package stats

import "math"

// Histogram is a fixed-width-bin histogram over [Lo, Hi), with explicit
// underflow and overflow counters so no observation is silently dropped.
// It backs the paper's Figures 1 and 2 (improvement distributions).
type Histogram struct {
	Lo, Hi    float64
	Bins      []int64
	Underflow int64
	Overflow  int64
	total     int64
}

// NewHistogram creates a histogram with nbins equal-width bins spanning
// [lo, hi). It panics if nbins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins <= 0 {
		panic("stats: NewHistogram requires nbins > 0")
	}
	if hi <= lo {
		panic("stats: NewHistogram requires hi > lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int64, nbins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.Underflow++
	case x >= h.Hi:
		h.Overflow++
	default:
		i := int((x - h.Lo) / h.BinWidth())
		if i >= len(h.Bins) { // guard against floating-point edge at Hi
			i = len(h.Bins) - 1
		}
		h.Bins[i]++
	}
}

// AddAll records every observation in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Merge folds another histogram with identical geometry into h. It panics
// if geometries differ.
func (h *Histogram) Merge(o *Histogram) {
	if h.Lo != o.Lo || h.Hi != o.Hi || len(h.Bins) != len(o.Bins) {
		panic("stats: Merge of histograms with different geometry")
	}
	for i, c := range o.Bins {
		h.Bins[i] += c
	}
	h.Underflow += o.Underflow
	h.Overflow += o.Overflow
	h.total += o.total
}

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 { return (h.Hi - h.Lo) / float64(len(h.Bins)) }

// BinCenter returns the center of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.BinWidth()
}

// Total returns the number of recorded observations, including under- and
// overflow.
func (h *Histogram) Total() int64 { return h.total }

// Fraction returns the fraction of observations landing in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Bins[i]) / float64(h.total)
}

// FractionBetween returns the fraction of all observations with values in
// [lo, hi), counting whole bins whose centers fall in the range plus under
// or overflow when the range extends past the histogram edges.
func (h *Histogram) FractionBetween(lo, hi float64) float64 {
	if h.total == 0 {
		return 0
	}
	var count int64
	if lo < h.Lo {
		count += h.Underflow
	}
	if hi > h.Hi {
		count += h.Overflow
	}
	for i, c := range h.Bins {
		if center := h.BinCenter(i); center >= lo && center < hi {
			count += c
		}
	}
	return float64(count) / float64(h.total)
}

// Mode returns the index of the most populated bin (the first one on ties),
// or -1 for an empty histogram.
func (h *Histogram) Mode() int {
	best, bestCount := -1, int64(0)
	for i, c := range h.Bins {
		if c > bestCount {
			best, bestCount = i, c
		}
	}
	return best
}

// CDF describes an empirical cumulative distribution as sorted (x, F(x))
// points.
type CDF struct {
	X []float64
	F []float64
}

// EmpiricalCDF computes the empirical CDF of xs. The input is copied and
// sorted; xs is unmodified.
func EmpiricalCDF(xs []float64) CDF {
	n := len(xs)
	c := CDF{X: make([]float64, n), F: make([]float64, n)}
	copy(c.X, xs)
	sortFloat64s(c.X)
	for i := range c.F {
		c.F[i] = float64(i+1) / float64(n)
	}
	return c
}

// At returns F(x): the fraction of observations <= x.
func (c CDF) At(x float64) float64 {
	lo, hi := 0, len(c.X)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.X[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if len(c.X) == 0 {
		return 0
	}
	return float64(lo) / float64(len(c.X))
}

func sortFloat64s(xs []float64) {
	// Insertion sort for tiny inputs, heapsort otherwise; avoids pulling
	// sort into this file's hot path... but clarity wins: delegate.
	quickSort(xs, 0, len(xs)-1)
}

func quickSort(xs []float64, lo, hi int) {
	for lo < hi {
		if hi-lo < 12 {
			for i := lo + 1; i <= hi; i++ {
				for j := i; j > lo && xs[j] < xs[j-1]; j-- {
					xs[j], xs[j-1] = xs[j-1], xs[j]
				}
			}
			return
		}
		mid := lo + (hi-lo)/2
		// Median-of-three pivot.
		if xs[mid] < xs[lo] {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
		if xs[hi] < xs[lo] {
			xs[hi], xs[lo] = xs[lo], xs[hi]
		}
		if xs[hi] < xs[mid] {
			xs[hi], xs[mid] = xs[mid], xs[hi]
		}
		pivot := xs[mid]
		i, j := lo, hi
		for i <= j {
			for xs[i] < pivot {
				i++
			}
			for xs[j] > pivot {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		// Recurse on the smaller side to bound stack depth.
		if j-lo < hi-i {
			quickSort(xs, lo, j)
			lo = i
		} else {
			quickSort(xs, i, hi)
			hi = j
		}
	}
}

// NaNFree reports whether xs contains no NaNs; experiment drivers assert
// this on computed improvement samples before aggregation.
func NaNFree(xs []float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) {
			return false
		}
	}
	return true
}
