package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	h.AddAll([]float64{-5, 0, 9.99, 10, 55, 99.99, 100, 200})
	if h.Underflow != 1 {
		t.Errorf("underflow=%d, want 1", h.Underflow)
	}
	if h.Overflow != 2 {
		t.Errorf("overflow=%d, want 2 (100 and 200)", h.Overflow)
	}
	if h.Bins[0] != 2 { // 0 and 9.99
		t.Errorf("bin0=%d, want 2", h.Bins[0])
	}
	if h.Bins[1] != 1 { // 10
		t.Errorf("bin1=%d, want 1", h.Bins[1])
	}
	if h.Bins[5] != 1 { // 55
		t.Errorf("bin5=%d, want 1", h.Bins[5])
	}
	if h.Total() != 8 {
		t.Errorf("total=%d, want 8", h.Total())
	}
}

func TestHistogramConservationProperty(t *testing.T) {
	f := func(raw []float64) bool {
		h := NewHistogram(-50, 150, 20)
		n := 0
		for _, x := range raw {
			if math.IsNaN(x) {
				continue
			}
			h.Add(x)
			n++
		}
		var binned int64
		for _, c := range h.Bins {
			binned += c
		}
		return binned+h.Underflow+h.Overflow == int64(n) && h.Total() == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(0, 10, 5)
	b := NewHistogram(0, 10, 5)
	a.AddAll([]float64{1, 3, 5})
	b.AddAll([]float64{1, 7, 11, -1})
	a.Merge(b)
	if a.Total() != 7 {
		t.Fatalf("merged total=%d, want 7", a.Total())
	}
	if a.Bins[0] != 2 {
		t.Fatalf("merged bin0=%d, want 2", a.Bins[0])
	}
	if a.Overflow != 1 || a.Underflow != 1 {
		t.Fatalf("merged over/under=%d/%d", a.Overflow, a.Underflow)
	}
}

func TestHistogramMergeGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on geometry mismatch")
		}
	}()
	NewHistogram(0, 10, 5).Merge(NewHistogram(0, 10, 6))
}

func TestHistogramFractionBetween(t *testing.T) {
	h := NewHistogram(-100, 300, 40) // width 10
	h.AddAll([]float64{-50, 10, 20, 30, 150, 250})
	got := h.FractionBetween(0, 100)
	if !almost(got, 0.5, 1e-12) { // 10,20,30 of 6
		t.Fatalf("FractionBetween(0,100)=%v, want 0.5", got)
	}
	if got := h.FractionBetween(-1000, 0); !almost(got, 1.0/6, 1e-12) {
		t.Fatalf("negative fraction=%v, want 1/6", got)
	}
}

func TestHistogramMode(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	if h.Mode() != -1 {
		t.Fatal("empty histogram mode should be -1")
	}
	h.AddAll([]float64{5.5, 5.1, 5.9, 2.2})
	if h.Mode() != 5 {
		t.Fatalf("mode=%d, want 5", h.Mode())
	}
}

func TestHistogramPanicsOnBadGeometry(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(10, 10, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestEmpiricalCDF(t *testing.T) {
	c := EmpiricalCDF([]float64{3, 1, 2, 2})
	if !sort.Float64sAreSorted(c.X) {
		t.Fatal("CDF X not sorted")
	}
	if got := c.At(0); got != 0 {
		t.Errorf("At(0)=%v, want 0", got)
	}
	if got := c.At(2); !almost(got, 0.75, 1e-12) {
		t.Errorf("At(2)=%v, want 0.75", got)
	}
	if got := c.At(10); got != 1 {
		t.Errorf("At(10)=%v, want 1", got)
	}
}

func TestEmpiricalCDFMonotoneProperty(t *testing.T) {
	c := EmpiricalCDF([]float64{5, 3, 8, 1, 9, 2, 2, 7})
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return c.At(a) <= c.At(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSortMatchesStdlib(t *testing.T) {
	f := func(xs []float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if !math.IsNaN(x) {
				clean = append(clean, x)
			}
		}
		mine := make([]float64, len(clean))
		std := make([]float64, len(clean))
		copy(mine, clean)
		copy(std, clean)
		sortFloat64s(mine)
		sort.Float64s(std)
		for i := range mine {
			if mine[i] != std[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNaNFree(t *testing.T) {
	if !NaNFree([]float64{1, 2, 3}) {
		t.Fatal("clean slice flagged")
	}
	if NaNFree([]float64{1, math.NaN()}) {
		t.Fatal("NaN not detected")
	}
}
