package stats

import (
	"testing"

	"repro/internal/randx"
)

func normSample(r *randx.RNG, n int, mu, sigma float64) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = mu + sigma*r.NormFloat64()
	}
	return xs
}

func TestKSSameDistribution(t *testing.T) {
	r := randx.New(1)
	a := normSample(r, 400, 0, 1)
	b := normSample(r, 400, 0, 1)
	res := KolmogorovSmirnov(a, b)
	if !res.SameDistribution(0.01) {
		t.Fatalf("identical distributions rejected: %+v", res)
	}
	if res.D < 0 || res.D > 1 {
		t.Fatalf("D out of range: %v", res.D)
	}
}

func TestKSDifferentMeans(t *testing.T) {
	r := randx.New(2)
	a := normSample(r, 400, 0, 1)
	b := normSample(r, 400, 1.5, 1)
	res := KolmogorovSmirnov(a, b)
	if res.SameDistribution(0.01) {
		t.Fatalf("clearly shifted distributions accepted: %+v", res)
	}
	if res.D < 0.3 {
		t.Fatalf("D=%v too small for a 1.5-sigma shift", res.D)
	}
}

func TestKSDifferentShapes(t *testing.T) {
	r := randx.New(3)
	a := normSample(r, 3000, 0, 1)
	b := make([]float64, 3000)
	for i := range b {
		b[i] = 4*r.Float64() - 2 // uniform on [-2,2)
	}
	res := KolmogorovSmirnov(a, b)
	if res.SameDistribution(0.01) {
		t.Fatalf("normal vs uniform accepted: %+v", res)
	}
}

func TestKSIdenticalSamples(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	res := KolmogorovSmirnov(xs, xs)
	if res.D != 0 || res.PValue < 0.99 {
		t.Fatalf("identical samples: %+v", res)
	}
}

func TestKSEmpty(t *testing.T) {
	res := KolmogorovSmirnov(nil, []float64{1})
	if res.D != 0 || res.PValue != 1 {
		t.Fatalf("empty sample: %+v", res)
	}
}

func TestKSDoesNotMutate(t *testing.T) {
	a := []float64{3, 1, 2}
	b := []float64{2, 3, 1}
	KolmogorovSmirnov(a, b)
	if a[0] != 3 || b[0] != 2 {
		t.Fatal("KS mutated its inputs")
	}
}

func TestKSQBounds(t *testing.T) {
	if q := ksQ(0); q != 1 {
		t.Fatalf("ksQ(0)=%v", q)
	}
	if q := ksQ(10); q > 1e-10 {
		t.Fatalf("ksQ(10)=%v, want ~0", q)
	}
	prev := 1.0
	for _, l := range []float64{0.3, 0.6, 1.0, 1.5, 2.0} {
		q := ksQ(l)
		if q > prev {
			t.Fatalf("ksQ not monotone at %v", l)
		}
		prev = q
	}
}
