// Package stats provides the descriptive statistics used throughout the
// indirect-routing evaluation: online accumulators, full-sample summaries,
// histograms, empirical CDFs, correlation, and ordinary least squares.
//
// All functions are pure and allocation-conscious; the experiment drivers
// call them from parallel workers, so nothing here holds global state.
package stats

import (
	"math"
	"sort"
)

// Acc is an online (Welford) accumulator for mean and variance that also
// tracks min, max, and sum of squares for RMS. The zero value is ready to
// use. It is not safe for concurrent use; give each worker its own and
// Merge afterwards.
type Acc struct {
	n          int64
	mean, m2   float64
	sumSq      float64
	min, max   float64
	hasExtrema bool
}

// Add folds one observation into the accumulator.
func (a *Acc) Add(x float64) {
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
	a.sumSq += x * x
	if !a.hasExtrema || x < a.min {
		a.min = x
	}
	if !a.hasExtrema || x > a.max {
		a.max = x
	}
	a.hasExtrema = true
}

// Merge folds another accumulator into a (Chan et al. parallel variance).
func (a *Acc) Merge(b *Acc) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	n := a.n + b.n
	d := b.mean - a.mean
	a.m2 += b.m2 + d*d*float64(a.n)*float64(b.n)/float64(n)
	a.mean += d * float64(b.n) / float64(n)
	a.sumSq += b.sumSq
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.n = n
}

// N returns the number of observations.
func (a *Acc) N() int64 { return a.n }

// Mean returns the sample mean (0 if empty).
func (a *Acc) Mean() float64 { return a.mean }

// Var returns the unbiased sample variance (0 for n < 2).
func (a *Acc) Var() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// Std returns the sample standard deviation.
func (a *Acc) Std() float64 { return math.Sqrt(a.Var()) }

// RMS returns the root mean square of the observations.
func (a *Acc) RMS() float64 {
	if a.n == 0 {
		return 0
	}
	return math.Sqrt(a.sumSq / float64(a.n))
}

// Min returns the smallest observation (0 if empty).
func (a *Acc) Min() float64 { return a.min }

// Max returns the largest observation (0 if empty).
func (a *Acc) Max() float64 { return a.max }

// Summary holds the full set of descriptive statistics for a sample.
type Summary struct {
	N                        int
	Mean, Median, Std, RMS   float64
	Min, Max                 float64
	P10, P25, P75, P90, P95  float64
	FracNegative, FracInUnit float64 // fraction < 0, fraction in [0, 100]
}

// Summarize computes a Summary of xs. It copies and sorts internally and
// leaves xs unmodified. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)

	var acc Acc
	neg, inUnit := 0, 0
	for _, x := range xs {
		acc.Add(x)
		if x < 0 {
			neg++
		}
		if x >= 0 && x <= 100 {
			inUnit++
		}
	}
	s.Mean = acc.Mean()
	s.Std = acc.Std()
	s.RMS = acc.RMS()
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.Median = Quantile(sorted, 0.5)
	s.P10 = Quantile(sorted, 0.10)
	s.P25 = Quantile(sorted, 0.25)
	s.P75 = Quantile(sorted, 0.75)
	s.P90 = Quantile(sorted, 0.90)
	s.P95 = Quantile(sorted, 0.95)
	s.FracNegative = float64(neg) / float64(s.N)
	s.FracInUnit = float64(inUnit) / float64(s.N)
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of an already-sorted
// sample using linear interpolation between order statistics.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Mean returns the arithmetic mean of xs (0 if empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the median of xs without modifying it.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return Quantile(sorted, 0.5)
}

// JainFairness returns Jain's fairness index (Σx)²/(n·Σx²) for a set of
// allocations: 1.0 means perfectly equal shares, 1/n means one member
// takes everything. Standard metric for judging how fairly concurrent
// flows share a bottleneck.
func JainFairness(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}
