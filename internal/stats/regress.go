package stats

import "math"

// LinearFit is the result of an ordinary least squares fit y = a + b*x.
type LinearFit struct {
	Intercept float64 // a
	Slope     float64 // b
	R2        float64 // coefficient of determination
	N         int
}

// OLS fits y = a + b*x by ordinary least squares. It panics if the slices
// have different lengths; it returns a zero fit for n < 2 or degenerate x.
func OLS(xs, ys []float64) LinearFit {
	if len(xs) != len(ys) {
		panic("stats: OLS requires len(xs) == len(ys)")
	}
	n := len(xs)
	fit := LinearFit{N: n}
	if n < 2 {
		return fit
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return fit
	}
	fit.Slope = sxy / sxx
	fit.Intercept = my - fit.Slope*mx
	if syy > 0 {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	}
	return fit
}

// Pearson returns the Pearson correlation coefficient of the paired
// samples, or 0 when either sample is degenerate. It panics on mismatched
// lengths.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Pearson requires len(xs) == len(ys)")
	}
	n := len(xs)
	if n < 2 {
		return 0
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, syy, sxy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation of the paired samples.
// It is the Pearson correlation of the ranks, robust to the heavy tails of
// throughput data. Ties receive average ranks.
func Spearman(xs, ys []float64) float64 {
	return Pearson(ranks(xs), ranks(ys))
}

func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Sort indices by value (insertion sort keeps this dependency-free and
	// the samples here are small; the experiment aggregates per node, not
	// per transfer).
	for i := 1; i < n; i++ {
		for j := i; j > 0 && xs[idx[j]] < xs[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	r := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := (float64(i) + float64(j)) / 2
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}

// TrendSlopePerHour fits throughput samples taken at times ts (seconds)
// and returns the OLS slope expressed per hour, used to verify the paper's
// Figure 4 claim that indirect path throughput shows "no discernable
// uptrend or downtrend".
func TrendSlopePerHour(ts, ys []float64) float64 {
	return OLS(ts, ys).Slope * 3600
}
