package stats

import (
	"math"
	"testing"

	"repro/internal/randx"
)

func TestBootstrapMeanCICoversTruth(t *testing.T) {
	// Draw samples from a known distribution; the 95% CI should contain
	// the true mean in roughly 95% of trials. Check a loose lower bound
	// over 100 trials.
	rng := randx.New(1)
	covered := 0
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, 60)
		for i := range xs {
			xs[i] = 10 + 3*rng.NormFloat64()
		}
		ci := BootstrapMeanCI(xs, 0.95, 400, rng.Fork("bs"))
		if ci.Contains(10) {
			covered++
		}
	}
	if covered < 85 {
		t.Fatalf("95%% CI covered the truth only %d/100 times", covered)
	}
}

func TestBootstrapCIOrdering(t *testing.T) {
	rng := randx.New(2)
	xs := []float64{1, 5, 2, 8, 3, 9, 4, 2, 7, 6}
	ci := BootstrapMeanCI(xs, 0.95, 500, rng)
	if ci.Lo > ci.Point || ci.Point > ci.Hi {
		t.Fatalf("CI not ordered: %+v", ci)
	}
	if !almost(ci.Point, Mean(xs), 1e-12) {
		t.Fatalf("point estimate %v != mean %v", ci.Point, Mean(xs))
	}
	if ci.Width() <= 0 {
		t.Fatal("degenerate interval for a dispersed sample")
	}
}

func TestBootstrapNarrowsWithN(t *testing.T) {
	rng := randx.New(3)
	mk := func(n int) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		return xs
	}
	small := BootstrapMeanCI(mk(20), 0.95, 500, rng.Fork("a"))
	large := BootstrapMeanCI(mk(2000), 0.95, 500, rng.Fork("b"))
	if large.Width() >= small.Width() {
		t.Fatalf("CI did not narrow with sample size: %v vs %v", large.Width(), small.Width())
	}
}

func TestBootstrapEdgeCases(t *testing.T) {
	rng := randx.New(4)
	empty := BootstrapMeanCI(nil, 0.95, 100, rng)
	if empty.Point != 0 || empty.Lo != 0 || empty.Hi != 0 {
		t.Fatalf("empty CI = %+v", empty)
	}
	single := BootstrapMeanCI([]float64{7}, 0.95, 100, rng)
	if single.Lo != 7 || single.Hi != 7 || single.Point != 7 {
		t.Fatalf("single-sample CI = %+v", single)
	}
	constant := BootstrapMeanCI([]float64{3, 3, 3, 3}, 0.95, 100, rng)
	if constant.Width() != 0 || constant.Point != 3 {
		t.Fatalf("constant-sample CI = %+v", constant)
	}
}

func TestBootstrapDefaults(t *testing.T) {
	rng := randx.New(5)
	ci := BootstrapMeanCI([]float64{1, 2, 3}, 0, 0, rng)
	if ci.Level != 0.95 || ci.Resample != 1000 {
		t.Fatalf("defaults not applied: %+v", ci)
	}
	bad := BootstrapMeanCI([]float64{1, 2, 3}, 1.5, 50, rng)
	if bad.Level != 0.95 {
		t.Fatalf("out-of-range level not defaulted: %+v", bad)
	}
}

func TestBootstrapCustomStatistic(t *testing.T) {
	rng := randx.New(6)
	xs := []float64{1, 2, 3, 4, 100}
	ci := BootstrapCI(xs, Median, 0.95, 500, rng)
	if math.Abs(ci.Point-3) > 1e-12 {
		t.Fatalf("median point = %v, want 3", ci.Point)
	}
	if ci.Lo > ci.Point || ci.Point > ci.Hi {
		t.Fatalf("median CI not ordered: %+v", ci)
	}
	// Every bootstrap median of this sample is one of its order
	// statistics, so the interval must stay within the sample's range.
	if ci.Lo < 1 || ci.Hi > 100 {
		t.Fatalf("median CI outside sample range: %+v", ci)
	}
}
