package obs

import "sync"

// Kind names an event's type in the normalized trace form.
type Kind string

// Trace event kinds, one per Observer callback.
const (
	KindProbeStart    Kind = "probe-start"
	KindProbeEnd      Kind = "probe-end"
	KindProbeCancel   Kind = "probe-cancel"
	KindSelection     Kind = "selection"
	KindTransferStart Kind = "transfer-start"
	KindTransferEnd   Kind = "transfer-end"
	KindRetry         Kind = "retry"
	KindAbort         Kind = "abort"
)

// Event is the normalized, JSON-ready form of any observer callback; the
// Tracer stores these and package traceio archives them. Fields not
// meaningful for a kind are zero and omitted from JSON.
type Event struct {
	Seq        uint64  `json:"seq"`
	Kind       Kind    `json:"kind"`
	Time       float64 `json:"t"`
	Path       PathID  `json:"path"`
	Offset     int64   `json:"off,omitempty"`
	Bytes      int64   `json:"bytes,omitempty"`
	Duration   float64 `json:"dur,omitempty"`
	Warm       bool    `json:"warm,omitempty"`
	Rule       string  `json:"rule,omitempty"`
	Candidates int     `json:"candidates,omitempty"`
	Indirect   bool    `json:"indirect,omitempty"`
	Attempt    int     `json:"attempt,omitempty"`
	Backoff    float64 `json:"backoff,omitempty"`
	Class      string  `json:"class,omitempty"`
	Err        string  `json:"err,omitempty"`
}

// Event converts the typed callback payload to its normalized form.
func (e ProbeStart) Event() Event {
	return Event{Kind: KindProbeStart, Time: e.Time, Path: e.Path, Offset: e.Offset, Bytes: e.Bytes}
}

// Event converts the typed callback payload to its normalized form.
func (e ProbeEnd) Event() Event {
	return Event{Kind: KindProbeEnd, Time: e.Time, Path: e.Path, Offset: e.Offset,
		Bytes: e.Bytes, Duration: e.Duration, Class: e.Class.String(), Err: e.Err}
}

// Event converts the typed callback payload to its normalized form.
func (e ProbeCancel) Event() Event {
	return Event{Kind: KindProbeCancel, Time: e.Time, Path: e.Path}
}

// Event converts the typed callback payload to its normalized form.
func (e Selection) Event() Event {
	return Event{Kind: KindSelection, Time: e.Time, Path: e.Path, Rule: e.Rule,
		Candidates: e.Candidates, Indirect: e.Indirect, Duration: e.ProbeDuration}
}

// Event converts the typed callback payload to its normalized form.
func (e TransferStart) Event() Event {
	return Event{Kind: KindTransferStart, Time: e.Time, Path: e.Path,
		Offset: e.Offset, Bytes: e.Bytes, Warm: e.Warm}
}

// Event converts the typed callback payload to its normalized form.
func (e TransferEnd) Event() Event {
	return Event{Kind: KindTransferEnd, Time: e.Time, Path: e.Path, Offset: e.Offset,
		Bytes: e.Bytes, Duration: e.Duration, Warm: e.Warm, Class: e.Class.String(), Err: e.Err}
}

// Event converts the typed callback payload to its normalized form.
func (e Retry) Event() Event {
	return Event{Kind: KindRetry, Time: e.Time, Path: e.Path,
		Attempt: e.Attempt, Backoff: e.Backoff, Err: e.Err}
}

// Event converts the typed callback payload to its normalized form.
func (e Abort) Event() Event {
	return Event{Kind: KindAbort, Time: e.Time, Path: e.Path, Class: e.Class.String()}
}

// DefaultTraceCap is the Tracer ring size when none is given: enough for
// a few hundred selection operations without unbounded growth.
const DefaultTraceCap = 1024

// Tracer keeps the most recent events in a fixed-size ring buffer — the
// flight recorder of the stack. Old events are overwritten, never
// allocated past the cap, so a Tracer can stay attached to a production
// client indefinitely. Safe for concurrent use.
type Tracer struct {
	mu   sync.Mutex
	ring []Event
	next int    // ring slot the next event lands in
	seq  uint64 // events ever seen (assigns Event.Seq, 1-based)
	full bool
}

// NewTracer returns a tracer retaining the last capacity events
// (DefaultTraceCap when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{ring: make([]Event, capacity)}
}

func (t *Tracer) add(e Event) {
	t.mu.Lock()
	t.seq++
	e.Seq = t.seq
	t.ring[t.next] = e
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		out := make([]Event, t.next)
		copy(out, t.ring[:t.next])
		return out
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Seen returns how many events the tracer has ever received.
func (t *Tracer) Seen() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Dropped returns how many events have been overwritten by newer ones.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return 0
	}
	return t.seq - uint64(len(t.ring))
}

// Observer callbacks: each normalizes and records.

func (t *Tracer) ProbeStarted(e ProbeStart)       { t.add(e.Event()) }
func (t *Tracer) ProbeFinished(e ProbeEnd)        { t.add(e.Event()) }
func (t *Tracer) ProbeCanceled(e ProbeCancel)     { t.add(e.Event()) }
func (t *Tracer) PathSelected(e Selection)        { t.add(e.Event()) }
func (t *Tracer) TransferStarted(e TransferStart) { t.add(e.Event()) }
func (t *Tracer) TransferFinished(e TransferEnd)  { t.add(e.Event()) }
func (t *Tracer) RetryScheduled(e Retry)          { t.add(e.Event()) }
func (t *Tracer) TransferAborted(e Abort)         { t.add(e.Event()) }

var _ Observer = (*Tracer)(nil)
