package obs

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func pid(via string) PathID { return PathID{Server: "origin", Object: "o.bin", Via: via} }

func TestPathIDLabel(t *testing.T) {
	if l := pid("").Label(); l != "direct" {
		t.Fatalf("direct label = %q", l)
	}
	if l := pid("campus").Label(); l != "campus" {
		t.Fatalf("relay label = %q", l)
	}
	if !pid("").Direct() || pid("campus").Direct() {
		t.Fatal("Direct() misclassifies")
	}
}

func TestErrClassStrings(t *testing.T) {
	want := map[ErrClass]string{
		ClassOK: "ok", ClassCanceled: "canceled", ClassTimeout: "timeout",
		ClassStatus: "status", ClassFailed: "failed", ErrClass(99): "unknown",
	}
	for c, s := range want {
		if c.String() != s {
			t.Fatalf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
}

// playRace drives one canonical selection race into an observer: three
// probes start, the relay "fast" wins, two losers are canceled and then
// finish with the canceled class, and the warm remainder completes.
func playRace(o Observer) {
	for _, via := range []string{"", "fast", "slow"} {
		o.ProbeStarted(ProbeStart{Path: pid(via), Time: 0, Bytes: 100_000})
	}
	o.PathSelected(Selection{Path: pid("fast"), Time: 0.1, Rule: "first-finished",
		Candidates: 3, Indirect: true, ProbeDuration: 0.1})
	o.ProbeCanceled(ProbeCancel{Path: pid(""), Time: 0.1})
	o.ProbeCanceled(ProbeCancel{Path: pid("slow"), Time: 0.1})
	o.TransferStarted(TransferStart{Path: pid("fast"), Time: 0.1, Offset: 100_000, Bytes: 900_000, Warm: true})
	o.ProbeFinished(ProbeEnd{Path: pid("fast"), Time: 0.1, Bytes: 100_000, Duration: 0.1, Class: ClassOK})
	o.ProbeFinished(ProbeEnd{Path: pid(""), Time: 0.1, Bytes: 100_000, Duration: 0.1, Class: ClassCanceled, Err: "canceled"})
	o.ProbeFinished(ProbeEnd{Path: pid("slow"), Time: 0.1, Bytes: 100_000, Duration: 0.1, Class: ClassCanceled, Err: "canceled"})
	o.TransferFinished(TransferEnd{Path: pid("fast"), Time: 1.0, Offset: 100_000,
		Bytes: 900_000, Duration: 0.9, Warm: true, Class: ClassOK})
}

func TestMetricsCountsOneRace(t *testing.T) {
	m := NewMetrics()
	playRace(m)
	s := m.Snapshot()

	if s.ProbesStarted != 3 || s.ProbesFinished != 3 {
		t.Fatalf("probes started/finished = %d/%d, want 3/3", s.ProbesStarted, s.ProbesFinished)
	}
	if s.ProbesCanceled != 2 {
		t.Fatalf("probes canceled = %d, want 2", s.ProbesCanceled)
	}
	if s.ProbesFailed != 0 {
		t.Fatalf("probes failed = %d, want 0 (cancellations are not failures)", s.ProbesFailed)
	}
	if s.Selections != 1 || s.SelectionsIndirect != 1 {
		t.Fatalf("selections = %d (%d indirect), want 1 (1)", s.Selections, s.SelectionsIndirect)
	}
	if s.TransfersStarted != 1 || s.TransfersFinished != 1 || s.TransfersFailed != 0 {
		t.Fatalf("transfers = %d/%d/%d", s.TransfersStarted, s.TransfersFinished, s.TransfersFailed)
	}
	if s.BytesDelivered != 100_000+900_000 {
		t.Fatalf("bytes delivered = %d", s.BytesDelivered)
	}

	fast := s.Paths["fast"]
	if fast.Probed != 1 || fast.Selected != 1 || fast.Utilization != 1.0 {
		t.Fatalf("fast tally = %+v", fast)
	}
	direct := s.Paths["direct"]
	if direct.Probed != 1 || direct.Selected != 0 || direct.Canceled != 1 || direct.Utilization != 0 {
		t.Fatalf("direct tally = %+v", direct)
	}
	if s.Paths["slow"].Canceled != 1 {
		t.Fatalf("slow tally = %+v", s.Paths["slow"])
	}

	// The successful probe landed in the latency histogram, the
	// remainder's 8 Mb/s in the throughput histogram.
	if s.ProbeLatencySeconds.Total != 1 {
		t.Fatalf("latency histogram total = %d", s.ProbeLatencySeconds.Total)
	}
	if s.TransferMbps.Total != 1 {
		t.Fatalf("throughput histogram total = %d", s.TransferMbps.Total)
	}
}

func TestMetricsFailureClasses(t *testing.T) {
	m := NewMetrics()
	m.ProbeStarted(ProbeStart{Path: pid("dead")})
	m.ProbeFinished(ProbeEnd{Path: pid("dead"), Class: ClassFailed, Err: "dial refused"})
	m.TransferStarted(TransferStart{Path: pid("dead")})
	m.TransferFinished(TransferEnd{Path: pid("dead"), Class: ClassTimeout, Err: "deadline"})
	m.RetryScheduled(Retry{Path: pid("dead"), Attempt: 1, Backoff: 0.05})
	m.TransferAborted(Abort{Path: pid("dead"), Class: ClassCanceled})

	s := m.Snapshot()
	if s.ProbesFailed != 1 || s.TransfersFailed != 1 || s.Retries != 1 || s.Aborts != 1 {
		t.Fatalf("failure counters = %+v", s)
	}
	if s.Paths["dead"].Failed != 2 {
		t.Fatalf("dead tally failed = %d, want 2", s.Paths["dead"].Failed)
	}
	if s.BytesDelivered != 0 {
		t.Fatalf("bytes delivered = %d, want 0", s.BytesDelivered)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	m := NewMetrics()
	playRace(m)
	var back Snapshot
	if err := json.Unmarshal(m.Snapshot().JSON(), &back); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v", err)
	}
	if back.Selections != 1 || back.Paths["fast"].Selected != 1 {
		t.Fatalf("round-tripped snapshot = %+v", back)
	}
}

func TestSnapshotPathLabelsOrder(t *testing.T) {
	m := NewMetrics()
	playRace(m)
	labels := m.Snapshot().PathLabels()
	if len(labels) != 3 || labels[0] != "direct" || labels[1] != "fast" || labels[2] != "slow" {
		t.Fatalf("labels = %v", labels)
	}
}

func TestTracerRingWraps(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.ProbeStarted(ProbeStart{Path: pid(fmt.Sprintf("r%d", i)), Time: float64(i)})
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, e := range evs {
		wantSeq := uint64(7 + i) // events 7..10 survive
		if e.Seq != wantSeq || e.Path.Via != fmt.Sprintf("r%d", wantSeq-1) {
			t.Fatalf("event %d = %+v, want seq %d", i, e, wantSeq)
		}
	}
	if tr.Seen() != 10 || tr.Dropped() != 6 {
		t.Fatalf("seen/dropped = %d/%d, want 10/6", tr.Seen(), tr.Dropped())
	}
}

func TestTracerPartialFill(t *testing.T) {
	tr := NewTracer(8)
	playRace(tr)
	evs := tr.Events()
	if len(evs) != 8 {
		t.Fatalf("retained %d events, want 8", len(evs))
	}
	// playRace emits 11 events; a cap-8 ring keeps seq 4..11, so the
	// oldest survivor is the selection and the last the transfer end.
	if evs[0].Kind != KindSelection || evs[7].Kind != KindTransferEnd {
		t.Fatalf("unexpected event order: %v, %v", evs[0].Kind, evs[7].Kind)
	}
	if tr.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", tr.Dropped())
	}
}

func TestTracerDefaultCap(t *testing.T) {
	tr := NewTracer(0)
	if len(tr.ring) != DefaultTraceCap {
		t.Fatalf("default cap = %d", len(tr.ring))
	}
}

func TestMultiFanoutAndNilCollapse(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("Multi of nothing should be nil")
	}
	m := NewMetrics()
	if Multi(nil, m) != Observer(m) {
		t.Fatal("Multi of one live observer should return it directly")
	}
	t1, t2 := NewTracer(16), NewTracer(16)
	fan := Multi(t1, nil, t2)
	playRace(fan)
	if t1.Seen() != 11 || t2.Seen() != 11 {
		t.Fatalf("fanout seen = %d/%d, want 11/11", t1.Seen(), t2.Seen())
	}
}

func TestBaseIsNoOp(t *testing.T) {
	var b Base
	playRace(b) // must not panic
	// Base doesn't implement the optional extensions; Emit* must be no-ops
	// against it rather than panic.
	EmitProgress(b, Progress{Chunk: 1})
	EmitPool(b, Pool{Op: PoolReuse})
}

func TestPoolOpStrings(t *testing.T) {
	want := map[PoolOp]string{
		PoolReuse: "reuse", PoolMiss: "miss", PoolPark: "park",
		PoolEvict: "evict", PoolDiscard: "discard", PoolOp(99): "unknown",
	}
	for op, s := range want {
		if op.String() != s {
			t.Fatalf("%d.String() = %q, want %q", op, op.String(), s)
		}
	}
}

func TestMetricsStreamAndPoolCounters(t *testing.T) {
	m := NewMetrics()
	// A transfer that streams 3 chunks but ultimately fails: bytesStreamed
	// counts all of it, bytesDelivered none.
	for i, chunk := range []int64{64 << 10, 64 << 10, 10_000} {
		EmitProgress(m, Progress{Path: pid("fast"), Chunk: chunk,
			Delivered: int64(i+1) * chunk, Total: 1 << 20})
	}
	m.TransferFinished(TransferEnd{Path: pid("fast"), Class: ClassFailed, Err: "reset"})
	for _, op := range []PoolOp{PoolMiss, PoolPark, PoolReuse, PoolPark, PoolEvict, PoolDiscard} {
		EmitPool(m, Pool{Key: "fast", Op: op})
	}

	s := m.Snapshot()
	if want := int64(64<<10 + 64<<10 + 10_000); s.BytesStreamed != want {
		t.Fatalf("bytes streamed = %d, want %d", s.BytesStreamed, want)
	}
	if s.BytesDelivered != 0 {
		t.Fatalf("bytes delivered = %d, want 0 for a failed transfer", s.BytesDelivered)
	}
	if s.PoolReuses != 1 || s.PoolMisses != 1 || s.PoolParked != 2 ||
		s.PoolEvicted != 1 || s.PoolDiscarded != 1 {
		t.Fatalf("pool counters = reuse %d miss %d park %d evict %d discard %d",
			s.PoolReuses, s.PoolMisses, s.PoolParked, s.PoolEvicted, s.PoolDiscarded)
	}
}

// TestMultiForwardsOptionalEvents pins the fan-out contract: wrapping a
// progress/pool-aware sink in Multi alongside a blind one must still
// deliver the optional events to the aware sink.
func TestMultiForwardsOptionalEvents(t *testing.T) {
	m := NewMetrics()
	fan := Multi(NewTracer(4), m) // tracer is blind to progress/pool
	EmitProgress(fan, Progress{Path: pid("fast"), Chunk: 512})
	EmitPool(fan, Pool{Key: "direct", Op: PoolMiss})
	s := m.Snapshot()
	if s.BytesStreamed != 512 || s.PoolMisses != 1 {
		t.Fatalf("events lost in fan-out: streamed %d, misses %d", s.BytesStreamed, s.PoolMisses)
	}
}

// TestMetricsConcurrentSnapshots is the race-detector pass the issue asks
// for: many goroutines emitting while others snapshot continuously.
func TestMetricsConcurrentSnapshots(t *testing.T) {
	m := NewMetrics()
	tr := NewTracer(64)
	fan := Multi(m, tr)
	const workers, rounds = 8, 200

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				playRace(fan)
			}
		}(w)
	}
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		for i := 0; i < 500; i++ {
			_ = m.Snapshot()
			_ = tr.Events()
		}
	}()
	wg.Wait()
	<-snapDone

	s := m.Snapshot()
	if want := int64(workers * rounds); s.Selections != want {
		t.Fatalf("selections = %d, want %d", s.Selections, want)
	}
	if want := int64(workers * rounds * 3); s.ProbesStarted != want || s.ProbesFinished != want {
		t.Fatalf("probes = %d/%d, want %d", s.ProbesStarted, s.ProbesFinished, want)
	}
	if want := int64(workers * rounds * 1_000_000); s.BytesDelivered != want {
		t.Fatalf("bytes = %d, want %d", s.BytesDelivered, want)
	}
}
