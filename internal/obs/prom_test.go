package obs

import (
	"strings"
	"testing"
	"time"
)

func TestPromSnapshotRendersAndLints(t *testing.T) {
	m := NewMetrics()
	playRace(m)
	p := NewProm()
	m.Snapshot().WriteProm(p, "indirect")
	out := p.Bytes()
	if err := LintProm(out); err != nil {
		t.Fatalf("lint: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{
		"# TYPE indirect_selections_total counter",
		"indirect_selections_total 1",
		`indirect_path_selected_total{route="fast"} 1`,
		"# TYPE indirect_probe_latency_seconds histogram",
		`indirect_probe_latency_seconds_bucket{le="+Inf"} 1`,
		"indirect_probe_latency_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestPromHistogramBucketsCumulativeAndBounded(t *testing.T) {
	var lat LatencyRecorder
	for i := 0; i < 500; i++ {
		lat.Observe(time.Duration(i) * 10 * time.Millisecond) // 0 .. 5 s
	}
	lat.Observe(time.Hour) // overflow
	p := NewProm()
	p.Histogram("x_seconds", "test", lat.Snapshot())
	out := string(p.Bytes())
	if err := LintProm([]byte(out)); err != nil {
		t.Fatalf("lint: %v\n%s", err, out)
	}
	buckets := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "x_seconds_bucket") {
			buckets++
		}
	}
	if buckets > promHistMaxBuckets+1 {
		t.Fatalf("%d bucket lines, want at most %d explicit + Inf", buckets, promHistMaxBuckets)
	}
	if !strings.Contains(out, `x_seconds_bucket{le="+Inf"} 501`) {
		t.Fatalf("+Inf bucket should equal total:\n%s", out)
	}
	if !strings.Contains(out, "x_seconds_count 501") {
		t.Fatalf("count missing:\n%s", out)
	}
}

func TestLintPromRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE": "orphan_total 1\n",
		"bad metric name":     "# HELP 9bad x\n# TYPE 9bad counter\n9bad 1\n",
		"bad value":           "# HELP a_total x\n# TYPE a_total counter\na_total one\n",
		"bad TYPE":            "# HELP a x\n# TYPE a matrix\na 1\n",
		"non-cumulative buckets": "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"missing +Inf": "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n",
		"unbalanced labels": "# HELP a x\n# TYPE a counter\na}b{ 1\n",
		"unquoted label":    "# HELP a x\n# TYPE a counter\na{route=fast} 1\n",
	}
	for name, doc := range cases {
		if err := LintProm([]byte(doc)); err == nil {
			t.Fatalf("%s: lint accepted\n%s", name, doc)
		}
	}
}

func TestLintPromAcceptsWellFormed(t *testing.T) {
	doc := "# HELP a_total Things.\n# TYPE a_total counter\n" +
		"a_total{route=\"r,1\",kind=\"x\"} 3\n\n" +
		"# HELP g Level.\n# TYPE g gauge\ng 0.5\n"
	if err := LintProm([]byte(doc)); err != nil {
		t.Fatalf("lint rejected well-formed doc: %v", err)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	// 100 observations spread uniformly over [0, 10): quantiles must track
	// the uniform distribution to within a bin width (0.1 s geometry).
	var lat LatencyRecorder
	for i := 0; i < 100; i++ {
		lat.Observe(time.Duration(i) * 100 * time.Millisecond)
	}
	s := lat.Snapshot()
	check := func(q, want, tol float64) {
		got := s.Quantile(q)
		if got < want-tol || got > want+tol {
			t.Fatalf("Quantile(%v) = %v, want %v ± %v", q, got, want, tol)
		}
	}
	check(0.5, 5.0, 0.2)
	check(0.9, 9.0, 0.2)
	check(0.99, 9.9, 0.2)
	if s.P50 != s.Quantile(0.5) || s.P90 != s.Quantile(0.9) || s.P99 != s.Quantile(0.99) {
		t.Fatal("precomputed P50/P90/P99 disagree with Quantile")
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	var empty HistogramSnapshot
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty snapshot quantile should be 0")
	}
	s := HistogramSnapshot{Lo: 0, Hi: 10, Bins: make([]int64, 10)}
	s.Underflow = 5 // all mass below range
	s.Total = 5
	if s.Quantile(0.5) != 0 {
		t.Fatal("all-underflow quantile should clamp to Lo")
	}
	s = HistogramSnapshot{Lo: 0, Hi: 10, Bins: make([]int64, 10), Overflow: 5, Total: 5}
	if s.Quantile(0.5) != 10 {
		t.Fatal("all-overflow quantile should clamp to Hi")
	}
	// Out-of-range q clamps instead of misbehaving.
	s = HistogramSnapshot{Lo: 0, Hi: 10, Bins: []int64{4, 0, 0, 0, 0, 0, 0, 0, 0, 4}, Total: 8}
	if got := s.Quantile(-1); got < 0 || got > 1 {
		t.Fatalf("Quantile(-1) = %v", got)
	}
	if got := s.Quantile(2); got < 9 || got > 10 {
		t.Fatalf("Quantile(2) = %v", got)
	}
}

func TestMetricsSnapshotJSONCarriesQuantiles(t *testing.T) {
	m := NewMetrics()
	playRace(m)
	text := string(m.Snapshot().JSON())
	for _, want := range []string{`"p50"`, `"p90"`, `"p99"`} {
		if !strings.Contains(text, want) {
			t.Fatalf("snapshot JSON missing %s:\n%s", want, text)
		}
	}
}
