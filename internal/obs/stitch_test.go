package obs

import (
	"strings"
	"testing"
)

// buildTrace fabricates the canonical cross-process span set of one
// operation: client select → transfer → {dial, stream}, with the relay's
// forward span parented on the client stream and the origin's serve span
// parented on the forward — exactly what a stitched archive merge yields.
func buildTrace() (TraceID, []Span) {
	trace := NewTraceID()
	mk := func(parent SpanID, svc, phase string, start, dur int64) Span {
		return Span{Trace: trace, ID: NewSpanID(), Parent: parent,
			Service: svc, Phase: phase, Start: start, Duration: dur, Class: "ok"}
	}
	sel := mk(SpanID{}, "client", "select", 0, 1000)
	xfer := mk(sel.ID, "client", "transfer", 100, 800)
	dial := mk(xfer.ID, "client", "dial", 100, 50)
	stream := mk(xfer.ID, "client", "stream", 200, 700)
	fwd := mk(stream.ID, "relay", "forward", 250, 600)
	serve := mk(fwd.ID, "origin", "serve", 300, 100)
	// Shuffle the archive order: stitching must not depend on it.
	return trace, []Span{serve, dial, sel, fwd, stream, xfer}
}

func TestStitchTraceBuildsOneTree(t *testing.T) {
	trace, spans := buildTrace()
	roots := StitchTrace(trace, spans)
	if len(roots) != 1 {
		t.Fatalf("got %d roots, want 1", len(roots))
	}
	var order []string
	depths := map[string]int{}
	roots[0].Walk(func(n *TraceNode, depth int) {
		key := n.Span.Service + "/" + n.Span.Phase
		order = append(order, key)
		depths[key] = depth
	})
	want := []string{"client/select", "client/transfer", "client/dial",
		"client/stream", "relay/forward", "origin/serve"}
	if strings.Join(order, " ") != strings.Join(want, " ") {
		t.Fatalf("walk order = %v, want %v", order, want)
	}
	for key, d := range map[string]int{"client/select": 0, "client/transfer": 1,
		"client/dial": 2, "relay/forward": 3, "origin/serve": 4} {
		if depths[key] != d {
			t.Fatalf("%s at depth %d, want %d", key, depths[key], d)
		}
	}
}

func TestStitchTraceSiblingsSortedByStart(t *testing.T) {
	trace, spans := buildTrace()
	roots := StitchTrace(trace, spans)
	xfer := roots[0].Children[0]
	if len(xfer.Children) != 2 {
		t.Fatalf("transfer has %d children, want 2", len(xfer.Children))
	}
	if xfer.Children[0].Span.Phase != "dial" || xfer.Children[1].Span.Phase != "stream" {
		t.Fatal("siblings not sorted by start time")
	}
}

func TestStitchTraceOrphansBecomeRoots(t *testing.T) {
	// A span whose parent was never archived (relay ran without -trace)
	// must still render instead of vanishing.
	trace := NewTraceID()
	orphan := Span{Trace: trace, ID: NewSpanID(), Parent: NewSpanID(),
		Service: "origin", Phase: "serve", Start: 10, Duration: 5, Class: "ok"}
	root := Span{Trace: trace, ID: NewSpanID(),
		Service: "client", Phase: "select", Start: 0, Duration: 100, Class: "ok"}
	other := Span{Trace: NewTraceID(), ID: NewSpanID(),
		Service: "client", Phase: "select", Start: 0, Duration: 1, Class: "ok"}
	roots := StitchTrace(trace, []Span{orphan, root, other})
	if len(roots) != 2 {
		t.Fatalf("got %d roots, want 2 (root + orphan)", len(roots))
	}
	if roots[0].Span.Phase != "select" || roots[1].Span.Phase != "serve" {
		t.Fatal("roots not ordered by start")
	}
}

func TestTraceIDsFirstSeenOrder(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	spans := []Span{{Trace: a}, {Trace: b}, {Trace: a}}
	ids := TraceIDs(spans)
	if len(ids) != 2 || ids[0] != a || ids[1] != b {
		t.Fatalf("TraceIDs = %v", ids)
	}
}

func TestFormatTraceTimeline(t *testing.T) {
	trace, spans := buildTrace()
	out := FormatTrace(trace, StitchTrace(trace, spans))
	if !strings.HasPrefix(out, "trace "+trace.String()+":") {
		t.Fatalf("missing trace heading:\n%s", out)
	}
	for _, want := range []string{"client/select", "relay/forward", "origin/serve", "ok"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
	// Deeper spans are indented further: serve's line carries more
	// leading space before its label than select's.
	lines := strings.Split(out, "\n")
	indent := func(substr string) int {
		for _, l := range lines {
			if i := strings.Index(l, substr); i >= 0 {
				return i
			}
		}
		t.Fatalf("no line contains %q:\n%s", substr, out)
		return -1
	}
	if indent("origin/serve") <= indent("client/select") {
		t.Fatal("depth indentation missing")
	}
}
