package obs

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestTraceHeaderRoundTrip(t *testing.T) {
	sc := SpanContext{Trace: NewTraceID(), Span: NewSpanID()}
	h := sc.Header()
	if len(h) != headerLen {
		t.Fatalf("header length = %d, want %d", len(h), headerLen)
	}
	got, ok := ParseTraceHeader(h)
	if !ok || got != sc {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, sc)
	}
}

func TestParseTraceHeaderRejectsMalformed(t *testing.T) {
	valid := SpanContext{Trace: NewTraceID(), Span: NewSpanID()}.Header()
	bad := []string{
		"",
		"x",
		valid[:len(valid)-1],                // truncated
		valid + "0",                         // oversized
		strings.Replace(valid, "-", "_", 1), // wrong separator
		strings.Repeat("g", headerLen),      // non-hex
		valid[:32] + "-" + strings.Repeat("z", 16), // non-hex span
		strings.Repeat("0", 32) + "-" + valid[33:], // zero trace ID
		valid[:32] + "-" + strings.Repeat("0", 16), // zero span ID
	}
	for _, v := range bad {
		if sc, ok := ParseTraceHeader(v); ok {
			t.Fatalf("ParseTraceHeader(%q) accepted: %+v", v, sc)
		} else if (sc != SpanContext{}) {
			t.Fatalf("ParseTraceHeader(%q) returned non-zero context on failure", v)
		}
	}
}

// FuzzParseTraceHeader is the satellite contract: no header value —
// malformed, truncated, oversized, binary garbage — may parse into a
// valid context unless it is the exact wire form, and a rejected value
// must yield the zero context (callers start a fresh trace, never fail).
func FuzzParseTraceHeader(f *testing.F) {
	f.Add("")
	f.Add(SpanContext{Trace: NewTraceID(), Span: NewSpanID()}.Header())
	f.Add(strings.Repeat("0", headerLen))
	f.Add(strings.Repeat("f", 32) + "-" + strings.Repeat("f", 16))
	f.Add(strings.Repeat("f", 200))
	f.Add("deadbeef-cafe")
	f.Add("\x00\xff-trace")
	f.Fuzz(func(t *testing.T, v string) {
		sc, ok := ParseTraceHeader(v)
		if !ok {
			if (sc != SpanContext{}) {
				t.Fatalf("rejected %q but returned non-zero context %+v", v, sc)
			}
			return
		}
		if !sc.Valid() {
			t.Fatalf("accepted %q but context invalid", v)
		}
		if sc.Header() != v {
			t.Fatalf("accepted %q but re-rendering gives %q", v, sc.Header())
		}
	})
}

func TestStartSpanParentage(t *testing.T) {
	c := NewSpanCollector(16)
	root := c.StartSpan(SpanContext{}, "client", "select")
	if !root.Context().Valid() {
		t.Fatal("root span has invalid context")
	}
	child := c.StartSpan(root.Context(), "client", "transfer")
	if child.Context().Trace != root.Context().Trace {
		t.Fatal("child did not inherit the parent's trace")
	}
	child.EndOK()
	root.End(ClassFailed, "boom")

	spans := c.Spans()
	if len(spans) != 2 {
		t.Fatalf("collected %d spans, want 2", len(spans))
	}
	// Spans land in End order: child first.
	if spans[0].Parent != root.Context().Span {
		t.Fatal("child's parent link is wrong")
	}
	if !spans[1].Parent.IsZero() {
		t.Fatal("root span should have a zero parent")
	}
	if spans[0].Class != "ok" || spans[1].Class != "failed" || spans[1].Err != "boom" {
		t.Fatalf("outcome fields wrong: %+v / %+v", spans[0], spans[1])
	}
}

func TestSpanEndIsIdempotent(t *testing.T) {
	c := NewSpanCollector(8)
	s := c.StartSpan(SpanContext{}, "client", "dial")
	s.EndOK()
	s.End(ClassFailed, "late") // must not double-record or overwrite
	spans := c.Spans()
	if len(spans) != 1 {
		t.Fatalf("double End recorded %d spans", len(spans))
	}
	if spans[0].Class != "ok" {
		t.Fatalf("second End overwrote the outcome: %q", spans[0].Class)
	}
}

func TestSpanCollectorRingDropsOldest(t *testing.T) {
	c := NewSpanCollector(4)
	var first SpanContext
	for i := 0; i < 6; i++ {
		s := c.StartSpan(SpanContext{}, "client", "p")
		if i == 0 {
			first = s.Context()
		}
		s.EndOK()
	}
	if c.Seen() != 6 || c.Dropped() != 2 {
		t.Fatalf("seen/dropped = %d/%d, want 6/2", c.Seen(), c.Dropped())
	}
	for _, s := range c.Spans() {
		if s.ID == first.Span {
			t.Fatal("oldest span survived a full wrap")
		}
	}
	if len(c.Spans()) != 4 {
		t.Fatalf("retained %d spans, want 4", len(c.Spans()))
	}
}

func TestNilCollectorIsNoOp(t *testing.T) {
	var c *SpanCollector
	if c.Spans() != nil || c.Seen() != 0 || c.Dropped() != 0 {
		t.Fatal("nil collector leaks state")
	}
	s := c.StartSpan(SpanContext{}, "client", "select")
	if s != nil {
		t.Fatal("nil collector returned a live span")
	}
	// Every ActiveSpan method must be nil-safe: this is the disabled hot
	// path.
	s.SetAttr("k", "v")
	if s.Context().Valid() {
		t.Fatal("nil span has a valid context")
	}
	s.End(ClassFailed, "x")
	s.EndOK()
	c.Record(Span{})
}

func TestRecordFillsDefaults(t *testing.T) {
	c := NewSpanCollector(8)
	c.Record(Span{Service: "client", Phase: "verify"})
	got := c.Spans()[0]
	if got.Trace.IsZero() || got.ID.IsZero() {
		t.Fatal("Record left IDs zero")
	}
	if got.Class != "ok" {
		t.Fatalf("Record default class = %q, want ok", got.Class)
	}
}

func TestSpanContextThroughContext(t *testing.T) {
	if _, ok := SpanFromContext(context.Background()); ok {
		t.Fatal("empty context reported a span")
	}
	sc := SpanContext{Trace: NewTraceID(), Span: NewSpanID()}
	ctx := ContextWithSpan(context.Background(), sc)
	got, ok := SpanFromContext(ctx)
	if !ok || got != sc {
		t.Fatalf("context round trip: %+v ok=%v", got, ok)
	}
	// An invalid stored context reads back as absent.
	if _, ok := SpanFromContext(ContextWithSpan(context.Background(), SpanContext{})); ok {
		t.Fatal("invalid span context reported present")
	}
}

func TestSpanJSONRoundTrip(t *testing.T) {
	c := NewSpanCollector(8)
	s := c.StartSpan(SpanContext{}, "relay", "forward")
	s.SetAttr("target", "http://o/x")
	s.EndOK()
	orig := c.Spans()[0]
	b, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Span
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Trace != orig.Trace || back.ID != orig.ID || back.Parent != orig.Parent {
		t.Fatal("IDs did not survive JSON")
	}
	if back.Attrs["target"] != "http://o/x" || back.Class != "ok" {
		t.Fatalf("fields did not survive JSON: %+v", back)
	}
	// A root's zero parent renders as "" and unmarshals back to zero.
	if !strings.Contains(string(b), `"parent":""`) {
		t.Fatalf("zero parent not rendered empty: %s", b)
	}
	// Foreign or corrupt IDs degrade to zero instead of failing the load.
	var tolerant Span
	if err := json.Unmarshal([]byte(`{"trace":"zz","span":"123"}`), &tolerant); err != nil {
		t.Fatalf("corrupt IDs should not fail: %v", err)
	}
	if !tolerant.Trace.IsZero() || !tolerant.ID.IsZero() {
		t.Fatal("corrupt IDs should degrade to zero")
	}
}
