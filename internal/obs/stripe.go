// Per-P striped metric cells: the scaling fix for the hot-path counter
// contention ROADMAP item 3(b) calls out. A single atomic.Int64 shared
// by every transfer goroutine ping-pongs its cache line between cores;
// here each update lands on one of GOMAXPROCS cache-line-padded stripes
// and a snapshot folds the stripes. Stripe affinity comes from a
// sync.Pool of stripe indices: the pool's per-P local caches hand the
// same index back to the same P in steady state, so cross-core sharing
// only happens when goroutines migrate — without reaching into runtime
// internals for a real P id. Boxing the indices is allocation-free
// (small-integer interface values are statically allocated), which is
// what keeps the warm-fetch allocs/op contract intact.

package obs

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// maxStripes bounds the stripe count: indices must stay in the
// boxing-free small-int range, and past the point where every P has its
// own stripe more stripes only slow the snapshot fold.
const maxStripes = 128

// stripeCount picks how many stripes a striped structure gets: one per
// P, clamped.
func stripeCount() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > maxStripes {
		n = maxStripes
	}
	return n
}

// stripePicker deals out stripe indices with per-P affinity. acquire
// returns an index whose stripe the calling goroutine should update;
// release returns it to the pool. The pool's New hands out round-robin
// indices, so even a fresh pool (or one the GC emptied) spreads load
// across all stripes.
type stripePicker struct {
	n    int
	next atomic.Uint32
	pool sync.Pool
}

func newStripePicker(n int) *stripePicker {
	p := &stripePicker{n: n}
	p.pool.New = func() any { return int(p.next.Add(1)-1) % p.n }
	return p
}

func (p *stripePicker) acquire() int  { return p.pool.Get().(int) }
func (p *stripePicker) release(i int) { p.pool.Put(i) }

// counterID indexes the cells of a counterStripe. The IDs cover every
// scalar counter Metrics tracks; per-path tallies stay in their own map
// (a path cardinality explosion should not multiply by the stripe
// count).
type counterID int

const (
	cProbesStarted counterID = iota
	cProbesFinished
	cProbesFailed
	cProbesCanceled
	cSelections
	cSelectionsIndirect
	cTransfersStarted
	cTransfersFinished
	cTransfersFailed
	cRetries
	cAborts
	cBytesDelivered
	cBytesStreamed
	cPoolReuses
	cPoolMisses
	cPoolParked
	cPoolEvicted
	cPoolDiscarded
	numCounters
)

// counterStripe is one cache-line-padded block of counter cells. The
// leading and trailing pads keep adjacent stripes (and whatever the
// allocator places next to them) off this stripe's lines; stripes are
// separately heap-allocated so the slice of pointers, not the cells,
// sits contiguously.
type counterStripe struct {
	_ [64]byte
	c [numCounters]atomic.Int64
	_ [64]byte
}

// stripedCounters is the sharded replacement for a bank of single
// atomic.Int64 cells.
type stripedCounters struct {
	picker  *stripePicker
	stripes []*counterStripe
}

func newStripedCounters() *stripedCounters {
	n := stripeCount()
	s := &stripedCounters{picker: newStripePicker(n), stripes: make([]*counterStripe, n)}
	for i := range s.stripes {
		s.stripes[i] = &counterStripe{}
	}
	return s
}

// add bumps one counter on the caller's stripe.
func (s *stripedCounters) add(id counterID, delta int64) {
	i := s.picker.acquire()
	s.stripes[i].c[id].Add(delta)
	s.picker.release(i)
}

// load folds one counter across all stripes.
func (s *stripedCounters) load(id counterID) int64 {
	var total int64
	for _, st := range s.stripes {
		total += st.c[id].Load()
	}
	return total
}

// Exemplar links one histogram bin to the most recent traced
// observation that landed in it: the trace ID is the handle that
// resolves — through StitchTrace over the span archives — to the
// cross-hop timeline explaining that bucket. Rendered on OpenMetrics
// scrapes as bucket exemplars.
type Exemplar struct {
	// Bin is the snapshot bin index the observation landed in.
	Bin int `json:"bin"`
	// Value is the observed value.
	Value float64 `json:"value"`
	// Trace identifies the operation that produced the observation.
	Trace TraceID `json:"trace"`
	// Time is when the observation was recorded, Unix nanoseconds.
	Time int64 `json:"time_unix_nano"`
}

// histStripe is one cache-line-padded histogram shard: a fixed-bucket
// histogram plus the exact running sum and the per-bin exemplar slots,
// all guarded by the stripe's own mutex. With one stripe per P the
// mutex is effectively uncontended — the point is not lock-freedom but
// keeping each P's updates on its own cache lines.
type histStripe struct {
	_   [64]byte
	mu  sync.Mutex
	h   *stats.Histogram
	sum float64
	ex  []Exemplar // per-bin most-recent, allocated on first traced observation
	_   [64]byte
}

// stripedHistogram shards a fixed-geometry histogram across per-P
// stripes. Identical geometry makes the snapshot fold exact
// (stats.Histogram.Merge), including the exact sum the Prometheus _sum
// sample now carries.
type stripedHistogram struct {
	lo, hi  float64
	bins    int
	picker  *stripePicker
	stripes []*histStripe
}

func newStripedHistogram(lo, hi float64, bins int) *stripedHistogram {
	n := stripeCount()
	s := &stripedHistogram{lo: lo, hi: hi, bins: bins,
		picker: newStripePicker(n), stripes: make([]*histStripe, n)}
	for i := range s.stripes {
		s.stripes[i] = &histStripe{h: stats.NewHistogram(lo, hi, bins)}
	}
	return s
}

// observe records one observation, optionally carrying the trace that
// produced it (a zero trace records no exemplar).
func (s *stripedHistogram) observe(v float64, trace TraceID) {
	i := s.picker.acquire()
	st := s.stripes[i]
	st.mu.Lock()
	st.h.Add(v)
	st.sum += v
	if !trace.IsZero() {
		if bin := s.binOf(v); bin >= 0 {
			if st.ex == nil {
				st.ex = make([]Exemplar, s.bins)
			}
			st.ex[bin] = Exemplar{Bin: bin, Value: v, Trace: trace, Time: time.Now().UnixNano()}
		}
	}
	st.mu.Unlock()
	s.picker.release(i)
}

// binOf maps a value to its bin index, -1 for under/overflow (exemplars
// only attach to explicit buckets).
func (s *stripedHistogram) binOf(v float64) int {
	if v < s.lo || v >= s.hi {
		return -1
	}
	i := int((v - s.lo) / ((s.hi - s.lo) / float64(s.bins)))
	if i >= s.bins {
		i = s.bins - 1
	}
	return i
}

// snapshot folds the stripes into one HistogramSnapshot: bins and sum
// merge exactly, and each bin's exemplar is the most recent across
// stripes.
func (s *stripedHistogram) snapshot() HistogramSnapshot {
	fold := stats.NewHistogram(s.lo, s.hi, s.bins)
	sum := 0.0
	var latest []Exemplar
	for _, st := range s.stripes {
		st.mu.Lock()
		fold.Merge(st.h)
		sum += st.sum
		for _, e := range st.ex {
			if e.Trace.IsZero() {
				continue
			}
			if latest == nil {
				latest = make([]Exemplar, s.bins)
			}
			if e.Time >= latest[e.Bin].Time || latest[e.Bin].Trace.IsZero() {
				latest[e.Bin] = e
			}
		}
		st.mu.Unlock()
	}
	snap := histSnapshot(fold)
	snap.Sum = sum // exact, replacing histSnapshot's bin-center estimate
	for _, e := range latest {
		if !e.Trace.IsZero() {
			snap.Exemplars = append(snap.Exemplars, e)
		}
	}
	return snap
}
