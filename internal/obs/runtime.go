// Go runtime health as Prometheus families, read from runtime/metrics:
// heap footprint, GC cycle count and pause distribution, goroutine
// count, and scheduler latency. Every daemon appends these to /metrics
// so fleet dashboards can separate application regressions from
// runtime pressure (a relay whose p99 collapsed because the heap is
// thrashing looks identical to one with a bad path until go_* says
// otherwise).

package obs

import (
	"runtime/metrics"
)

// runtimeSamples enumerates the runtime/metrics series the exposition
// covers, in render order.
var runtimeSamples = []struct {
	key  string
	name string
	help string
	typ  string // "gauge", "counter", or "hist"
}{
	{"/sched/goroutines:goroutines", "go_goroutines", "Live goroutines.", "gauge"},
	{"/sched/gomaxprocs:threads", "go_gomaxprocs", "GOMAXPROCS.", "gauge"},
	{"/memory/classes/heap/objects:bytes", "go_memstats_heap_objects_bytes", "Bytes of live heap objects.", "gauge"},
	{"/memory/classes/total:bytes", "go_memstats_total_bytes", "Total bytes mapped by the Go runtime.", "gauge"},
	{"/gc/cycles/total:gc-cycles", "go_gc_cycles_total", "Completed GC cycles.", "counter"},
	{"/gc/pauses:seconds", "go_gc_pause_seconds", "Stop-the-world GC pause durations.", "hist"},
	{"/sched/latencies:seconds", "go_sched_latency_seconds", "Time goroutines spent runnable before running.", "hist"},
}

// WriteRuntimeProm appends the go_* runtime families to an exposition.
// Series the running toolchain does not publish are skipped rather
// than rendered as zeros, so the output never lies about what was
// measured.
func WriteRuntimeProm(p *Prom) {
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, rs := range runtimeSamples {
		samples[i].Name = rs.key
	}
	metrics.Read(samples)
	for i, rs := range runtimeSamples {
		v := samples[i].Value
		switch rs.typ {
		case "gauge", "counter":
			var f float64
			switch v.Kind() {
			case metrics.KindUint64:
				f = float64(v.Uint64())
			case metrics.KindFloat64:
				f = v.Float64()
			default:
				continue
			}
			if rs.typ == "counter" {
				p.Counter(rs.name, rs.help, f)
			} else {
				p.Gauge(rs.name, rs.help, f)
			}
		case "hist":
			if v.Kind() != metrics.KindFloat64Histogram {
				continue
			}
			h := v.Float64Histogram()
			p.HistogramEdges(rs.name, rs.help, h.Buckets, h.Counts)
		}
	}
}
