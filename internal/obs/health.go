// Continuous path-health telemetry: the rolling per-path quality signal
// that turns the event stream into something an operator (or the
// registry) can rank paths by.
//
// The paper's Section V result — intermediate-node utilization tracks
// delivered improvement, and a small subset of candidates captures
// nearly all gain — is only actionable if each path's recent quality is
// known continuously. Detour and RON both built their overlays on
// exactly this kind of long-running path monitor. HealthMonitor is that
// backbone for this repo: it folds the selection-lifecycle events the
// stack already emits (zero new instrumentation points on the hot path;
// a nil monitor is never attached, so the unobserved path pays nothing)
// into per-path rolling windows — a ring of fixed-duration buckets
// tracking success/failure/retry counts, latency quantiles, and a
// throughput EWMA pair — and collapses each window into one health
// score with hysteresis, so the healthy → degraded → down transitions
// are damped rather than flapping with every sample.
//
// Time is float64 seconds throughout, matching event timestamps: fed
// from an Observer stream the monitor runs on event time (which keeps
// it deterministic on the virtual-time simulator), while daemons that
// feed it directly install a wall-clock via HealthConfig.Clock.
package obs

import (
	"encoding/json"
	"math"
	"sort"
	"sync"
	"time"
)

// HealthState is a path's damped condition.
type HealthState uint8

// Health states, best to worst. Unknown means no samples have arrived
// yet; transitions between the other three pass the hysteresis filter.
const (
	HealthUnknown HealthState = iota
	HealthHealthy
	HealthDegraded
	HealthDown
)

func (s HealthState) String() string {
	switch s {
	case HealthHealthy:
		return "healthy"
	case HealthDegraded:
		return "degraded"
	case HealthDown:
		return "down"
	}
	return "unknown"
}

// MarshalJSON renders the state as its name, so /debug/paths reads
// "healthy" rather than an enum ordinal.
func (s HealthState) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON parses the symbolic form back; unrecognized names decode
// as HealthUnknown so snapshots from newer writers still load.
func (s *HealthState) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "healthy":
		*s = HealthHealthy
	case "degraded":
		*s = HealthDegraded
	case "down":
		*s = HealthDown
	default:
		*s = HealthUnknown
	}
	return nil
}

// HealthConfig parameterizes a HealthMonitor. The zero value gets
// defaults suitable for interactive monitoring (60 s window); tests and
// fast loopback runs shrink Window to observe transitions quickly.
type HealthConfig struct {
	// Window is how many seconds of history fold into the score
	// (default 60). Samples older than Window rotate out of the ring.
	Window float64
	// Buckets is the ring granularity (default 12, i.e. 5 s buckets at
	// the default window).
	Buckets int

	// FastAlpha and SlowAlpha smooth the throughput EWMA pair (defaults
	// 0.4 and 0.05): the fast average tracks the current rate, the slow
	// one remembers the path's norm, and their ratio detects collapse
	// without an absolute throughput target.
	FastAlpha float64
	SlowAlpha float64

	// HealthyScore and DownScore bound the state bands: score >=
	// HealthyScore is healthy (default 0.75), score < DownScore is down
	// (default 0.35), between them degraded.
	HealthyScore float64
	DownScore    float64

	// Hysteresis is how many consecutive evaluations must agree on a new
	// state before the transition commits (default 2).
	Hysteresis int
	// MinDwell is the minimum seconds a state holds before the next
	// transition (default 2 bucket widths). A transition demanded before
	// the dwell expires is suppressed and counted as a damped flap.
	MinDwell float64

	// MaxSuccessAge is how many seconds without a success drive the
	// freshness factor (and with it the score) to zero (default Window).
	MaxSuccessAge float64

	// Clock supplies "now" in seconds for direct Observe calls and
	// snapshot aging. Nil means event time: the monitor's high-water
	// event timestamp, which keeps simulator-fed monitors deterministic.
	Clock func() float64

	// SLO, when set, receives every success/failure fold so availability
	// and latency objectives are tracked from the same stream.
	SLO *SLOTracker

	// OnTransition, when set, is called for every committed state change
	// with the path key and the transition. It runs after the monitor's
	// lock is released, so the callback may call back into the monitor
	// (State, Snapshot); slow callbacks still delay the folding caller.
	OnTransition func(path string, tr HealthTransition)
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.Window <= 0 {
		c.Window = 60
	}
	if c.Buckets <= 0 {
		c.Buckets = 12
	}
	if c.FastAlpha <= 0 {
		c.FastAlpha = 0.4
	}
	if c.SlowAlpha <= 0 {
		c.SlowAlpha = 0.05
	}
	if c.HealthyScore <= 0 {
		c.HealthyScore = 0.75
	}
	if c.DownScore <= 0 {
		c.DownScore = 0.35
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 2
	}
	if c.MinDwell <= 0 {
		c.MinDwell = 2 * c.Window / float64(c.Buckets)
	}
	if c.MaxSuccessAge <= 0 {
		c.MaxSuccessAge = c.Window
	}
	return c
}

// Latency histogram geometry: log2 bins from 0.1 ms up, so loopback
// microseconds and dial-up tens of seconds both resolve. Bin i covers
// [healthLatLo·2^i, healthLatLo·2^(i+1)).
const (
	healthLatBins = 36
	healthLatLo   = 1e-4
)

func healthLatBin(lat float64) int {
	if lat <= healthLatLo {
		return 0
	}
	b := int(math.Log2(lat / healthLatLo))
	if b >= healthLatBins {
		return healthLatBins - 1
	}
	return b
}

// healthBucket is one fixed-duration slice of a path's history. num is
// the absolute bucket number (floor(t/width)); a slot whose num is stale
// is reset before reuse, which is how old samples rotate out without a
// sweeper goroutine.
type healthBucket struct {
	num     int64
	ok      int64
	fail    int64
	retry   int64
	bytes   int64
	latBins [healthLatBins]int32
}

func (b *healthBucket) reset(num int64) {
	*b = healthBucket{num: num}
}

// HealthTransition is one committed state change, kept (bounded) for
// /debug/paths so an operator can see the path's recent trajectory.
type HealthTransition struct {
	From  HealthState `json:"from"`
	To    HealthState `json:"to"`
	Time  float64     `json:"time"`
	Score float64     `json:"score"`
}

// healthHistoryCap bounds the per-path transition log.
const healthHistoryCap = 16

// pathHealth is one path's rolling state.
type pathHealth struct {
	buckets []healthBucket

	fast, slow float64 // throughput EWMAs, Mb/s
	haveEWMA   bool

	lastSuccess float64
	everSuccess bool
	everSample  bool

	state      HealthState
	stateSince float64
	pending    HealthState
	pendingN   int

	transitions     int64
	flapsSuppressed int64
	history         []HealthTransition

	score float64
}

// HealthMonitor folds transfer outcomes into per-path rolling windows
// and keeps a damped health state per path. It implements Observer (and
// is safe for concurrent use), so attaching it to a Client or a
// core.Config is one line; daemons without an event stream feed it
// directly through Observe/ObserveRetry.
type HealthMonitor struct {
	cfg HealthConfig

	mu      sync.Mutex
	paths   map[string]*pathHealth
	hiwater float64 // newest event time seen (event-time "now")

	// notices queues committed transitions for OnTransition while m.mu is
	// held; every path that calls evaluate drains it after unlocking.
	notices []healthNotice
}

// healthNotice is one queued OnTransition delivery.
type healthNotice struct {
	path string
	tr   HealthTransition
}

// takeNotices detaches the queued transition notices. Caller holds m.mu.
func (m *HealthMonitor) takeNotices() []healthNotice {
	n := m.notices
	m.notices = nil
	return n
}

// fireNotices delivers queued transitions. Caller must NOT hold m.mu:
// the callback is allowed to read the monitor.
func (m *HealthMonitor) fireNotices(notices []healthNotice) {
	for _, n := range notices {
		m.cfg.OnTransition(n.path, n.tr)
	}
}

// NewHealthMonitor returns a monitor with cfg's gaps filled by defaults.
func NewHealthMonitor(cfg HealthConfig) *HealthMonitor {
	return &HealthMonitor{cfg: cfg.withDefaults(), paths: make(map[string]*pathHealth)}
}

// Config returns the monitor's effective (default-filled) configuration.
func (m *HealthMonitor) Config() HealthConfig { return m.cfg }

// SLO returns the tracker receiving this monitor's folds, or nil.
func (m *HealthMonitor) SLO() *SLOTracker { return m.cfg.SLO }

func (m *HealthMonitor) bucketWidth() float64 {
	return m.cfg.Window / float64(m.cfg.Buckets)
}

// now returns the monitor's current time under m.mu: the configured
// clock, or the high-water event time.
func (m *HealthMonitor) now() float64 {
	if m.cfg.Clock != nil {
		return m.cfg.Clock()
	}
	return m.hiwater
}

func (m *HealthMonitor) path(key string) *pathHealth {
	p := m.paths[key]
	if p == nil {
		p = &pathHealth{buckets: make([]healthBucket, m.cfg.Buckets), state: HealthUnknown}
		m.paths[key] = p
	}
	return p
}

// bucket returns the bucket covering time t, resetting a stale slot.
func (m *HealthMonitor) bucket(p *pathHealth, t float64) *healthBucket {
	if t < 0 {
		t = 0
	}
	num := int64(t / m.bucketWidth())
	b := &p.buckets[num%int64(len(p.buckets))]
	if b.num != num {
		b.reset(num)
	}
	return b
}

// fold is the single write path: it records one outcome sample at time t
// and re-evaluates the path's state.
func (m *HealthMonitor) fold(key string, t float64, class ErrClass, latency float64, bytes int64, retry bool) {
	m.mu.Lock()
	if t > m.hiwater {
		m.hiwater = t
	}
	p := m.path(key)
	b := m.bucket(p, t)
	switch {
	case retry:
		b.retry++
	case class == ClassOK:
		b.ok++
		b.bytes += bytes
		if latency > 0 {
			b.latBins[healthLatBin(latency)]++
			if bytes > 0 {
				m.foldEWMA(p, float64(bytes)*8/latency/1e6)
			}
		}
		p.lastSuccess = t
		p.everSuccess = true
	case class == ClassCanceled:
		// The caller abandoned the operation; that says nothing about the
		// path. Not a sample.
		m.mu.Unlock()
		return
	default:
		b.fail++
	}
	p.everSample = true
	m.evaluate(key, p, m.now())
	notices := m.takeNotices()
	slo := m.cfg.SLO
	m.mu.Unlock()
	// SLO fold and transition notices run unlocked: the SLO tracker has
	// its own mutex, and OnTransition may read back into this monitor.
	if slo != nil && !retry {
		slo.ObservePathAt(key, t, class == ClassOK, latency)
	}
	m.fireNotices(notices)
}

func (m *HealthMonitor) foldEWMA(p *pathHealth, mbps float64) {
	if !p.haveEWMA {
		p.fast, p.slow, p.haveEWMA = mbps, mbps, true
		return
	}
	p.fast += m.cfg.FastAlpha * (mbps - p.fast)
	p.slow += m.cfg.SlowAlpha * (mbps - p.slow)
}

// windowStats aggregates the live buckets at time now.
type windowStats struct {
	ok, fail, retry int64
	bytes           int64
	latBins         [healthLatBins]int64
}

func (m *HealthMonitor) window(p *pathHealth, now float64) windowStats {
	var w windowStats
	oldest := int64(now/m.bucketWidth()) - int64(len(p.buckets)) + 1
	for i := range p.buckets {
		b := &p.buckets[i]
		if b.num < oldest || (b.ok|b.fail|b.retry) == 0 {
			continue
		}
		w.ok += b.ok
		w.fail += b.fail
		w.retry += b.retry
		w.bytes += b.bytes
		for j, n := range b.latBins {
			w.latBins[j] += int64(n)
		}
	}
	return w
}

// latQuantile estimates the q-th latency quantile from merged log2 bins,
// returning the geometric midpoint of the bin holding the target rank.
func latQuantile(bins [healthLatBins]int64, q float64) float64 {
	var total int64
	for _, n := range bins {
		total += n
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, n := range bins {
		if n == 0 {
			continue
		}
		cum += float64(n)
		if rank <= cum {
			lo := healthLatLo * math.Pow(2, float64(i))
			return lo * math.Sqrt2 // geometric midpoint of [lo, 2lo)
		}
	}
	return healthLatLo * math.Pow(2, healthLatBins)
}

// scoreOf collapses a window into the health score in [0, 1]:
//
//	availability a = ok / (ok + fail + retry/2)   (1 with no samples)
//	throughput   r = clamp(fast/slow, 0, 1)       (1 before any EWMA)
//	freshness    f = clamp(1 − successAge/MaxSuccessAge, 0, 1)
//	score          = a · (0.5 + 0.5·r) · f
//
// The multiplicative form means hard failure (a→0) or staleness (f→0)
// alone drives the score to zero, while a pure throughput collapse with
// requests still succeeding floors at 0.5 — degraded, not down.
func (m *HealthMonitor) scoreOf(p *pathHealth, w windowStats, now float64) float64 {
	avail := 1.0
	if den := float64(w.ok) + float64(w.fail) + float64(w.retry)/2; den > 0 {
		avail = float64(w.ok) / den
	}
	tput := 1.0
	if p.haveEWMA && p.slow > 0 {
		tput = p.fast / p.slow
		if tput > 1 {
			tput = 1
		}
		if tput < 0 {
			tput = 0
		}
	}
	fresh := 0.0
	if p.everSuccess {
		fresh = 1 - (now-p.lastSuccess)/m.cfg.MaxSuccessAge
		if fresh < 0 {
			fresh = 0
		}
		if fresh > 1 {
			fresh = 1
		}
	}
	return avail * (0.5 + 0.5*tput) * fresh
}

func (m *HealthMonitor) target(score float64) HealthState {
	switch {
	case score >= m.cfg.HealthyScore:
		return HealthHealthy
	case score < m.cfg.DownScore:
		return HealthDown
	}
	return HealthDegraded
}

// evaluate recomputes the path's score and applies the hysteresis state
// machine: a new target state must win Hysteresis consecutive
// evaluations, and no transition commits before MinDwell seconds in the
// current state — demanded-but-dwelling transitions count as suppressed
// flaps.
func (m *HealthMonitor) evaluate(key string, p *pathHealth, now float64) {
	if !p.everSample {
		// Only canceled operations so far: the path was never actually
		// measured, so it stays unknown rather than scoring an empty
		// window.
		return
	}
	p.score = m.scoreOf(p, m.window(p, now), now)
	want := m.target(p.score)
	if p.state == HealthUnknown {
		// First sample: adopt the observed state directly.
		p.state = want
		p.stateSince = now
		return
	}
	if want == p.state {
		p.pendingN = 0
		return
	}
	if want == p.pending {
		p.pendingN++
	} else {
		p.pending = want
		p.pendingN = 1
	}
	if p.pendingN < m.cfg.Hysteresis {
		return
	}
	if now-p.stateSince < m.cfg.MinDwell {
		p.flapsSuppressed++
		return
	}
	tr := HealthTransition{From: p.state, To: want, Time: now, Score: p.score}
	p.history = append(p.history, tr)
	if len(p.history) > healthHistoryCap {
		p.history = p.history[len(p.history)-healthHistoryCap:]
	}
	p.state = want
	p.stateSince = now
	p.transitions++
	p.pendingN = 0
	if m.cfg.OnTransition != nil {
		m.notices = append(m.notices, healthNotice{path: key, tr: tr})
	}
}

// --- Observer feeding -------------------------------------------------

// ProbeStarted is a no-op: launches are not outcomes.
func (m *HealthMonitor) ProbeStarted(ProbeStart) {}

// ProbeFinished folds a probe outcome into its path's window.
func (m *HealthMonitor) ProbeFinished(e ProbeEnd) {
	m.fold(e.Path.Label(), e.Time, e.Class, e.Duration, e.Bytes, false)
}

// ProbeCanceled is a no-op: a reaped loser says nothing about the path.
func (m *HealthMonitor) ProbeCanceled(ProbeCancel) {}

// PathSelected is a no-op: selection counts live in Metrics.
func (m *HealthMonitor) PathSelected(Selection) {}

// TransferStarted is a no-op: launches are not outcomes.
func (m *HealthMonitor) TransferStarted(TransferStart) {}

// TransferFinished folds a payload-transfer outcome.
func (m *HealthMonitor) TransferFinished(e TransferEnd) {
	m.fold(e.Path.Label(), e.Time, e.Class, e.Duration, e.Bytes, false)
}

// RetryScheduled folds a transport retry (a half-weight failure signal).
func (m *HealthMonitor) RetryScheduled(e Retry) {
	m.fold(e.Path.Label(), e.Time, ClassFailed, 0, 0, true)
}

// TransferAborted folds deadline deaths as failures; caller
// cancellations are ignored.
func (m *HealthMonitor) TransferAborted(e Abort) {
	if e.Class == ClassCanceled {
		return
	}
	m.fold(e.Path.Label(), e.Time, e.Class, 0, 0, false)
}

var _ Observer = (*HealthMonitor)(nil)

// --- Direct feeding (daemons without an event stream) ----------------

// Observe records one outcome on key at the monitor's clock: the relay
// feeds forward outcomes per origin, the origin serve outcomes per
// object. latency in seconds; bytes feed the throughput EWMA.
func (m *HealthMonitor) Observe(key string, class ErrClass, latency float64, bytes int64) {
	m.mu.Lock()
	t := m.now()
	m.mu.Unlock()
	m.fold(key, t, class, latency, bytes, false)
}

// ObserveRetry records one retry on key at the monitor's clock.
func (m *HealthMonitor) ObserveRetry(key string) {
	m.mu.Lock()
	t := m.now()
	m.mu.Unlock()
	m.fold(key, t, ClassFailed, 0, 0, true)
}

// --- Snapshots --------------------------------------------------------

// PathHealth is one path's point-in-time health view.
type PathHealth struct {
	Path  string      `json:"path"`
	State HealthState `json:"state"`
	Score float64     `json:"score"`

	// Window counts.
	Ok      int64 `json:"ok"`
	Failed  int64 `json:"failed"`
	Retries int64 `json:"retries"`
	Bytes   int64 `json:"bytes"`

	SuccessRate float64 `json:"success_rate"`

	// ThroughputEWMA is the fast average (Mb/s); ThroughputRef the slow
	// one. Their ratio is the score's throughput factor.
	ThroughputEWMA float64 `json:"throughput_ewma_mbps"`
	ThroughputRef  float64 `json:"throughput_ref_mbps"`

	LatencyP50 float64 `json:"latency_p50_s"`
	LatencyP90 float64 `json:"latency_p90_s"`
	LatencyP99 float64 `json:"latency_p99_s"`

	// LastSuccessAge is seconds since the last success, -1 before any.
	LastSuccessAge float64 `json:"last_success_age_s"`

	Transitions     int64              `json:"transitions"`
	FlapsSuppressed int64              `json:"flaps_suppressed"`
	History         []HealthTransition `json:"history,omitempty"`
}

// HealthSnapshot is the whole monitor at one instant, ready for the
// /debug/paths endpoint.
type HealthSnapshot struct {
	Time  float64      `json:"time"`
	Paths []PathHealth `json:"paths"`
}

// JSON renders the snapshot as indented JSON. Built from plain fields,
// so marshaling cannot fail.
func (s HealthSnapshot) JSON() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		panic("obs: health snapshot marshal: " + err.Error())
	}
	return b
}

// Path returns the snapshot entry for one path.
func (s HealthSnapshot) Path(key string) (PathHealth, bool) {
	for _, p := range s.Paths {
		if p.Path == key {
			return p, true
		}
	}
	return PathHealth{}, false
}

// Snapshot captures every path's current health, re-evaluating each
// state first so aging alone (a path gone quiet) is reflected without
// waiting for its next event.
func (m *HealthMonitor) Snapshot() HealthSnapshot {
	m.mu.Lock()
	now := m.now()
	s := HealthSnapshot{Time: now, Paths: make([]PathHealth, 0, len(m.paths))}
	for key, p := range m.paths {
		m.evaluate(key, p, now)
		w := m.window(p, now)
		ph := PathHealth{
			Path:            key,
			State:           p.state,
			Score:           p.score,
			Ok:              w.ok,
			Failed:          w.fail,
			Retries:         w.retry,
			Bytes:           w.bytes,
			ThroughputEWMA:  p.fast,
			ThroughputRef:   p.slow,
			LatencyP50:      latQuantile(w.latBins, 0.50),
			LatencyP90:      latQuantile(w.latBins, 0.90),
			LatencyP99:      latQuantile(w.latBins, 0.99),
			LastSuccessAge:  -1,
			Transitions:     p.transitions,
			FlapsSuppressed: p.flapsSuppressed,
			History:         append([]HealthTransition(nil), p.history...),
		}
		if den := float64(w.ok) + float64(w.fail) + float64(w.retry)/2; den > 0 {
			ph.SuccessRate = float64(w.ok) / den
		} else {
			ph.SuccessRate = 1
		}
		if p.everSuccess {
			ph.LastSuccessAge = now - p.lastSuccess
		}
		s.Paths = append(s.Paths, ph)
	}
	notices := m.takeNotices()
	m.mu.Unlock()
	m.fireNotices(notices)
	sort.Slice(s.Paths, func(i, j int) bool { return s.Paths[i].Path < s.Paths[j].Path })
	return s
}

// PathHealth returns one path's current health view.
func (m *HealthMonitor) PathHealth(key string) (PathHealth, bool) {
	return m.Snapshot().Path(key)
}

// State returns a path's damped state (HealthUnknown if never seen).
func (m *HealthMonitor) State(key string) HealthState {
	m.mu.Lock()
	p := m.paths[key]
	if p == nil {
		m.mu.Unlock()
		return HealthUnknown
	}
	m.evaluate(key, p, m.now())
	state := p.state
	notices := m.takeNotices()
	m.mu.Unlock()
	m.fireNotices(notices)
	return state
}

// Score returns a path's current score (0 if never seen).
func (m *HealthMonitor) Score(key string) float64 {
	m.mu.Lock()
	p := m.paths[key]
	if p == nil {
		m.mu.Unlock()
		return 0
	}
	m.evaluate(key, p, m.now())
	score := p.score
	notices := m.takeNotices()
	m.mu.Unlock()
	m.fireNotices(notices)
	return score
}

// Healthiest returns up to k path keys ranked best-first: by state
// (healthy before degraded before down), then score, then name — the
// ordering registryd's health-ranked List applies to its relay set.
func (m *HealthMonitor) Healthiest(k int) []string {
	s := m.Snapshot()
	sort.SliceStable(s.Paths, func(i, j int) bool {
		a, b := s.Paths[i], s.Paths[j]
		if a.State != b.State {
			return a.State < b.State
		}
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		return a.Path < b.Path
	})
	if k > len(s.Paths) {
		k = len(s.Paths)
	}
	out := make([]string, 0, k)
	for _, p := range s.Paths[:k] {
		out = append(out, p.Path)
	}
	return out
}

// WriteProm renders the health view as Prometheus gauges under prefix:
// per-path score, state ordinal, throughput EWMA, and transition
// counters.
func (s HealthSnapshot) WriteProm(p *Prom, prefix string) {
	if len(s.Paths) == 0 {
		return
	}
	score := make(map[string]float64, len(s.Paths))
	state := make(map[string]float64, len(s.Paths))
	ewma := make(map[string]float64, len(s.Paths))
	trans := make(map[string]float64, len(s.Paths))
	flaps := make(map[string]float64, len(s.Paths))
	for _, ph := range s.Paths {
		score[ph.Path] = ph.Score
		state[ph.Path] = float64(ph.State)
		ewma[ph.Path] = ph.ThroughputEWMA
		trans[ph.Path] = float64(ph.Transitions)
		flaps[ph.Path] = float64(ph.FlapsSuppressed)
	}
	p.LabeledGauge(prefix+"_path_health", "Damped path health score in [0,1].", "route", score)
	p.LabeledGauge(prefix+"_path_health_state", "Path state: 0 unknown, 1 healthy, 2 degraded, 3 down.", "route", state)
	p.LabeledGauge(prefix+"_path_throughput_ewma_mbps", "Fast throughput EWMA per path, Mb/s.", "route", ewma)
	p.LabeledCounter(prefix+"_path_health_transitions_total", "Committed health-state transitions.", "route", trans)
	p.LabeledCounter(prefix+"_path_health_flaps_suppressed_total", "Transitions suppressed by dwell damping.", "route", flaps)
}

// WallClock is a ready-made HealthConfig.Clock: seconds since the
// monitor (or daemon) started.
func WallClock() func() float64 {
	start := time.Now()
	return func() float64 { return time.Since(start).Seconds() }
}
