// Package slogx is the repo's structured-logging setup: log/slog
// handlers configured by the daemons' -log-format/-log-level flags,
// per-component level overrides, and a handler wrapper that injects
// trace/span fields from the active tracing span so every log line can
// be joined against the stitched cross-process timeline by trace ID.
//
// The wrapper reads the same SpanContext that obs.ContextWithSpan
// stores, so any code already threading a context for tracing gets
// correlated logs for free; lines logged outside a span carry no
// trace/span keys at all (absent, not empty-valued), keeping
// field-existence queries meaningful.
package slogx

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"

	"repro/internal/obs"
)

// Field names the trace handler injects.
const (
	TraceKey = "trace"
	SpanKey  = "span"
	// ComponentKey labels a logger with its subsystem name.
	ComponentKey = "component"
)

// Config selects the output encoding and severity floor. Typically
// built straight from flag values; see ParseLevel and the daemons'
// -log-format/-log-level flags.
type Config struct {
	// Format is "text" (default) or "json".
	Format string
	// Level is the minimum severity (default slog.LevelInfo).
	Level slog.Level
	// ComponentLevels overrides the floor per component name, e.g.
	// {"registry": slog.LevelDebug}; matched against the logger's
	// ComponentKey attribute as set by New/With.
	ComponentLevels map[string]slog.Level
}

// ParseLevel maps a flag string to a slog level. Empty means info.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("slogx: unknown level %q (want debug|info|warn|error)", s)
}

// ParseComponentLevels parses a "comp=level,comp=level" flag value.
func ParseComponentLevels(s string) (map[string]slog.Level, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	out := make(map[string]slog.Level)
	for _, pair := range strings.Split(s, ",") {
		name, lvl, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("slogx: bad component level %q (want comp=level)", pair)
		}
		parsed, err := ParseLevel(lvl)
		if err != nil {
			return nil, err
		}
		out[name] = parsed
	}
	return out, nil
}

// NewHandler builds the configured base handler writing to w, wrapped
// with trace injection and per-component levels.
func NewHandler(w io.Writer, cfg Config) slog.Handler {
	opts := &slog.HandlerOptions{Level: cfg.Level}
	var base slog.Handler
	switch strings.ToLower(cfg.Format) {
	case "json":
		base = slog.NewJSONHandler(w, opts)
	default:
		base = slog.NewTextHandler(w, opts)
	}
	return &traceHandler{
		base:            base,
		floor:           cfg.Level,
		componentLevels: cfg.ComponentLevels,
	}
}

// New builds a component-labeled logger writing to w.
func New(w io.Writer, component string, cfg Config) *slog.Logger {
	return slog.New(NewHandler(w, cfg)).With(slog.String(ComponentKey, component))
}

// With returns a child of logger labeled with a (sub)component name.
func With(logger *slog.Logger, component string) *slog.Logger {
	return logger.With(slog.String(ComponentKey, component))
}

// traceHandler wraps a base handler, injecting trace/span attributes
// from the context's active SpanContext and applying per-component
// level overrides. It tracks the component attribute through
// WithAttrs so the override applies no matter where in the chain the
// label was attached.
type traceHandler struct {
	base            slog.Handler
	floor           slog.Level
	componentLevels map[string]slog.Level
	component       string
}

func (h *traceHandler) Enabled(ctx context.Context, level slog.Level) bool {
	if lvl, ok := h.componentLevels[h.component]; ok {
		return level >= lvl
	}
	return level >= h.floor
}

func (h *traceHandler) Handle(ctx context.Context, rec slog.Record) error {
	if sc, ok := obs.SpanFromContext(ctx); ok {
		rec = rec.Clone()
		rec.AddAttrs(
			slog.String(TraceKey, sc.Trace.String()),
			slog.String(SpanKey, sc.Span.String()),
		)
	}
	return h.base.Handle(ctx, rec)
}

func (h *traceHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	next := *h
	next.base = h.base.WithAttrs(attrs)
	for _, a := range attrs {
		if a.Key == ComponentKey && a.Value.Kind() == slog.KindString {
			next.component = a.Value.String()
		}
	}
	return &next
}

func (h *traceHandler) WithGroup(name string) slog.Handler {
	next := *h
	next.base = h.base.WithGroup(name)
	return &next
}
