package slogx

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// logLine logs one info message through a JSON handler and decodes the
// emitted line.
func logLine(t *testing.T, ctx context.Context, cfg Config, component, msg string) map[string]any {
	t.Helper()
	var buf bytes.Buffer
	logger := New(&buf, component, cfg)
	logger.InfoContext(ctx, msg, "k", "v")
	if buf.Len() == 0 {
		return nil
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("log line not JSON: %v\n%s", err, buf.Bytes())
	}
	return m
}

func TestTraceFieldsInsideSpan(t *testing.T) {
	col := obs.NewSpanCollector(8)
	span := col.StartSpan(obs.SpanContext{}, "test", "work")
	ctx := obs.ContextWithSpan(context.Background(), span.Context())

	m := logLine(t, ctx, Config{Format: "json"}, "client", "hello")
	trace, ok := m[TraceKey].(string)
	if !ok || trace != span.Context().Trace.String() {
		t.Fatalf("trace field = %v, want %s", m[TraceKey], span.Context().Trace)
	}
	sp, ok := m[SpanKey].(string)
	if !ok || sp != span.Context().Span.String() {
		t.Fatalf("span field = %v, want %s", m[SpanKey], span.Context().Span)
	}
	if m[ComponentKey] != "client" || m["k"] != "v" {
		t.Fatalf("attrs lost: %v", m)
	}
	span.EndOK()
}

func TestTraceFieldsAbsentOutsideSpan(t *testing.T) {
	m := logLine(t, context.Background(), Config{Format: "json"}, "client", "hello")
	// The keys must be absent, not present with empty values.
	if _, present := m[TraceKey]; present {
		t.Fatalf("trace key present outside span: %v", m)
	}
	if _, present := m[SpanKey]; present {
		t.Fatalf("span key present outside span: %v", m)
	}
}

func TestTextFormatAndLevels(t *testing.T) {
	var buf bytes.Buffer
	logger := New(&buf, "relay", Config{Format: "text", Level: slog.LevelWarn})
	logger.Info("suppressed")
	logger.Warn("visible", "addr", "127.0.0.1:0")
	out := buf.String()
	if strings.Contains(out, "suppressed") {
		t.Fatalf("info line leaked past warn floor:\n%s", out)
	}
	if !strings.Contains(out, "visible") || !strings.Contains(out, "component=relay") {
		t.Fatalf("warn line malformed:\n%s", out)
	}
}

func TestComponentLevelOverride(t *testing.T) {
	cfg := Config{
		Format:          "json",
		Level:           slog.LevelWarn,
		ComponentLevels: map[string]slog.Level{"registry": slog.LevelDebug},
	}
	var buf bytes.Buffer
	handler := NewHandler(&buf, cfg)
	noisy := slog.New(handler).With(slog.String(ComponentKey, "registry"))
	quiet := slog.New(handler).With(slog.String(ComponentKey, "relay"))
	noisy.Debug("registry-debug")
	quiet.Info("relay-info")
	out := buf.String()
	if !strings.Contains(out, "registry-debug") {
		t.Fatalf("component override did not lower the floor:\n%s", out)
	}
	if strings.Contains(out, "relay-info") {
		t.Fatalf("non-overridden component leaked past the floor:\n%s", out)
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"": slog.LevelInfo, "info": slog.LevelInfo, "debug": slog.LevelDebug,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn, "error": slog.LevelError,
		"ERROR": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel accepted garbage")
	}
}

func TestParseComponentLevels(t *testing.T) {
	m, err := ParseComponentLevels("registry=debug, relay=error")
	if err != nil {
		t.Fatal(err)
	}
	if m["registry"] != slog.LevelDebug || m["relay"] != slog.LevelError {
		t.Fatalf("parsed %v", m)
	}
	if m2, err := ParseComponentLevels(""); err != nil || m2 != nil {
		t.Fatalf("empty spec = %v, %v; want nil, nil", m2, err)
	}
	if _, err := ParseComponentLevels("nolevel"); err == nil {
		t.Fatal("accepted pair without =")
	}
}

// lockedBuffer serializes concurrent writes and hands back whole lines.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

// TestTraceInjectionConcurrentSpans drives one shared JSON logger from
// many goroutines, each inside its own span, and checks every emitted
// line carries the trace of the goroutine that logged it — the handler
// must read the span from the per-call context, never from shared
// state. Run with -race this also proves Handle/Clone stay data-race
// free on the shared handler chain.
func TestTraceInjectionConcurrentSpans(t *testing.T) {
	var out lockedBuffer
	logger := New(&out, "relay", Config{Format: "json"})

	const goroutines = 8
	const perG = 50
	traces := make([]obs.SpanContext, goroutines)
	for g := range traces {
		traces[g] = obs.SpanContext{Trace: obs.NewTraceID(), Span: obs.NewSpanID()}
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := obs.ContextWithSpan(context.Background(), traces[g])
			for i := 0; i < perG; i++ {
				logger.InfoContext(ctx, "work", "g", g, "i", i)
			}
		}(g)
	}
	wg.Wait()

	lines := strings.Split(strings.TrimSpace(out.buf.String()), "\n")
	if len(lines) != goroutines*perG {
		t.Fatalf("emitted %d lines, want %d", len(lines), goroutines*perG)
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("interleaved write broke a line: %v\n%q", err, line)
		}
		g := int(m["g"].(float64))
		if got := m[TraceKey]; got != traces[g].Trace.String() {
			t.Fatalf("goroutine %d line carries trace %v, want %s", g, got, traces[g].Trace)
		}
		if got := m[SpanKey]; got != traces[g].Span.String() {
			t.Fatalf("goroutine %d line carries span %v, want %s", g, got, traces[g].Span)
		}
	}
}

// TestComponentFilteringConcurrent exercises per-component level
// overrides on loggers derived from one shared handler while goroutines
// log through them concurrently: the noisy component's info lines are
// suppressed, everyone else's arrive intact.
func TestComponentFilteringConcurrent(t *testing.T) {
	var out lockedBuffer
	cfg := Config{
		Format: "json",
		Level:  slog.LevelInfo,
		ComponentLevels: map[string]slog.Level{
			"noisy": slog.LevelError,
			"quiet": slog.LevelDebug,
		},
	}
	root := slog.New(NewHandler(&out, cfg))
	components := []string{"noisy", "quiet", "plain"}

	const perC = 40
	var wg sync.WaitGroup
	for _, comp := range components {
		wg.Add(1)
		go func(comp string) {
			defer wg.Done()
			logger := With(root, comp)
			sc := obs.SpanContext{Trace: obs.NewTraceID(), Span: obs.NewSpanID()}
			ctx := obs.ContextWithSpan(context.Background(), sc)
			for i := 0; i < perC; i++ {
				logger.InfoContext(ctx, "tick", "i", i)  // dropped for noisy
				logger.DebugContext(ctx, "tock", "i", i) // kept only for quiet
			}
		}(comp)
	}
	wg.Wait()

	counts := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(out.buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad line: %v\n%q", err, line)
		}
		comp, _ := m[ComponentKey].(string)
		counts[comp]++
		if _, ok := m[TraceKey]; !ok {
			t.Fatalf("line lost its trace under concurrency: %q", line)
		}
	}
	want := map[string]int{
		"noisy": 0,        // info suppressed by the error override
		"quiet": 2 * perC, // debug allowed by the debug override
		"plain": perC,     // floor: info kept, debug dropped
	}
	for comp, n := range want {
		if counts[comp] != n {
			t.Fatalf("component %s emitted %d lines, want %d (all: %v)", comp, counts[comp], n, counts)
		}
	}
}
