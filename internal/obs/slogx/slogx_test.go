package slogx

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"

	"repro/internal/obs"
)

// logLine logs one info message through a JSON handler and decodes the
// emitted line.
func logLine(t *testing.T, ctx context.Context, cfg Config, component, msg string) map[string]any {
	t.Helper()
	var buf bytes.Buffer
	logger := New(&buf, component, cfg)
	logger.InfoContext(ctx, msg, "k", "v")
	if buf.Len() == 0 {
		return nil
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("log line not JSON: %v\n%s", err, buf.Bytes())
	}
	return m
}

func TestTraceFieldsInsideSpan(t *testing.T) {
	col := obs.NewSpanCollector(8)
	span := col.StartSpan(obs.SpanContext{}, "test", "work")
	ctx := obs.ContextWithSpan(context.Background(), span.Context())

	m := logLine(t, ctx, Config{Format: "json"}, "client", "hello")
	trace, ok := m[TraceKey].(string)
	if !ok || trace != span.Context().Trace.String() {
		t.Fatalf("trace field = %v, want %s", m[TraceKey], span.Context().Trace)
	}
	sp, ok := m[SpanKey].(string)
	if !ok || sp != span.Context().Span.String() {
		t.Fatalf("span field = %v, want %s", m[SpanKey], span.Context().Span)
	}
	if m[ComponentKey] != "client" || m["k"] != "v" {
		t.Fatalf("attrs lost: %v", m)
	}
	span.EndOK()
}

func TestTraceFieldsAbsentOutsideSpan(t *testing.T) {
	m := logLine(t, context.Background(), Config{Format: "json"}, "client", "hello")
	// The keys must be absent, not present with empty values.
	if _, present := m[TraceKey]; present {
		t.Fatalf("trace key present outside span: %v", m)
	}
	if _, present := m[SpanKey]; present {
		t.Fatalf("span key present outside span: %v", m)
	}
}

func TestTextFormatAndLevels(t *testing.T) {
	var buf bytes.Buffer
	logger := New(&buf, "relay", Config{Format: "text", Level: slog.LevelWarn})
	logger.Info("suppressed")
	logger.Warn("visible", "addr", "127.0.0.1:0")
	out := buf.String()
	if strings.Contains(out, "suppressed") {
		t.Fatalf("info line leaked past warn floor:\n%s", out)
	}
	if !strings.Contains(out, "visible") || !strings.Contains(out, "component=relay") {
		t.Fatalf("warn line malformed:\n%s", out)
	}
}

func TestComponentLevelOverride(t *testing.T) {
	cfg := Config{
		Format:          "json",
		Level:           slog.LevelWarn,
		ComponentLevels: map[string]slog.Level{"registry": slog.LevelDebug},
	}
	var buf bytes.Buffer
	handler := NewHandler(&buf, cfg)
	noisy := slog.New(handler).With(slog.String(ComponentKey, "registry"))
	quiet := slog.New(handler).With(slog.String(ComponentKey, "relay"))
	noisy.Debug("registry-debug")
	quiet.Info("relay-info")
	out := buf.String()
	if !strings.Contains(out, "registry-debug") {
		t.Fatalf("component override did not lower the floor:\n%s", out)
	}
	if strings.Contains(out, "relay-info") {
		t.Fatalf("non-overridden component leaked past the floor:\n%s", out)
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"": slog.LevelInfo, "info": slog.LevelInfo, "debug": slog.LevelDebug,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn, "error": slog.LevelError,
		"ERROR": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel accepted garbage")
	}
}

func TestParseComponentLevels(t *testing.T) {
	m, err := ParseComponentLevels("registry=debug, relay=error")
	if err != nil {
		t.Fatal(err)
	}
	if m["registry"] != slog.LevelDebug || m["relay"] != slog.LevelError {
		t.Fatalf("parsed %v", m)
	}
	if m2, err := ParseComponentLevels(""); err != nil || m2 != nil {
		t.Fatalf("empty spec = %v, %v; want nil, nil", m2, err)
	}
	if _, err := ParseComponentLevels("nolevel"); err == nil {
		t.Fatal("accepted pair without =")
	}
}
