// Package obs is the observability layer for the indirect-routing stack:
// structured selection-lifecycle events plus aggregate metrics.
//
// The paper's results — 45% indirect selection rate, the Table I
// improvement/penalty statistics, Section V's per-node utilization — are
// all aggregate statistics over individual probe races. The selection
// engine, the real transport, and the daemons emit typed events at every
// step of a race (probe start/finish, commit, loser cancellation, retry,
// remainder transfer); this package defines those events, the Observer
// interface that receives them, and two production sinks:
//
//   - Metrics: atomic counters and fixed-bucket histograms, snapshot-able
//     as JSON — the live counterpart of the paper's measurement tables.
//   - Tracer: a bounded ring of recent events for debugging and archival
//     (dump via package traceio).
//
// Observation is passive: observers see transport timestamps but never
// advance any clock, so the virtual-time simulator produces bit-identical
// results with or without an observer attached. A nil Observer disables
// emission entirely; emitters guard every callback with a nil check, so
// the unobserved hot path pays nothing.
//
// The package deliberately depends on nothing above internal/stats:
// events identify paths by plain strings (origin server, object, relay
// name) so every layer from the selection engine to the daemons can emit
// without import cycles.
package obs

// PathID identifies what a transfer-lifecycle event was about: the origin
// server, the object, and the route. Via is the intermediate's name, with
// "" denoting the direct path, mirroring core.Path.
type PathID struct {
	Server string `json:"server,omitempty"`
	Object string `json:"object,omitempty"`
	Via    string `json:"via,omitempty"`
}

// Direct reports whether the event's route is the default (non-relayed)
// path.
func (p PathID) Direct() bool { return p.Via == "" }

// Label returns the route name used for per-path aggregation: the relay
// name, or "direct" for the default route.
func (p PathID) Label() string {
	if p.Via == "" {
		return "direct"
	}
	return p.Via
}

// ErrClass buckets transfer errors into the classes the paper's analysis
// distinguishes: success, cancellation (the engine reaping a losing
// probe, or the caller abandoning the operation), deadline expiry (the
// penalty case), a server that answered with a failure status, and
// everything else (dial and I/O failures).
type ErrClass uint8

// Error classes, from best to worst.
const (
	ClassOK ErrClass = iota
	ClassCanceled
	ClassTimeout
	ClassStatus
	ClassFailed
)

func (c ErrClass) String() string {
	switch c {
	case ClassOK:
		return "ok"
	case ClassCanceled:
		return "canceled"
	case ClassTimeout:
		return "timeout"
	case ClassStatus:
		return "status"
	case ClassFailed:
		return "failed"
	}
	return "unknown"
}

// ProbeStart reports that an x-byte probe was launched on a path.
type ProbeStart struct {
	Path   PathID
	Time   float64 // transport clock, seconds
	Offset int64
	Bytes  int64
}

// ProbeEnd reports a probe's outcome, successful or not.
type ProbeEnd struct {
	Path     PathID
	Time     float64 // when the probe finished
	Offset   int64
	Bytes    int64
	Duration float64 // seconds from issue to completion
	Class    ErrClass
	Err      string
}

// ProbeCancel reports that the engine abandoned a still-running probe
// because the race was already decided (the loser-reaping the PR-1
// cancellation work introduced).
type ProbeCancel struct {
	Path PathID
	Time float64
}

// Selection reports the commit point of one selection operation: the path
// the remainder will use. Exactly one Selection is emitted per
// select-and-fetch (or monitored transfer), so its count equals the
// operation count.
type Selection struct {
	Path          PathID
	Time          float64
	Rule          string // comparison rule, or "monitored" for probe-free picks
	Candidates    int    // paths considered, including direct
	Indirect      bool
	ProbeDuration float64 // length of the probing phase, seconds
}

// TransferStart reports a payload transfer being issued (the remainder
// after a race, a monitored whole-object fetch, a multipath chunk, or an
// adaptive segment).
type TransferStart struct {
	Path   PathID
	Time   float64
	Offset int64
	Bytes  int64
	Warm   bool // continues an established connection
}

// TransferEnd reports a payload transfer's outcome.
type TransferEnd struct {
	Path     PathID
	Time     float64
	Offset   int64
	Bytes    int64
	Duration float64
	Warm     bool
	Class    ErrClass
	Err      string
}

// Retry reports the transport scheduling a cold re-attempt after a
// transient failure (realnet's dial/IO retry with exponential backoff).
type Retry struct {
	Path    PathID
	Time    float64
	Attempt int     // 1-based retry number
	Backoff float64 // chosen backoff before the attempt, seconds
	Err     string  // the failure that triggered the retry
}

// Abort reports the transport tearing a transfer down because its context
// died (cancellation or deadline) — the promoted form of realnet's old
// Canceled counter.
type Abort struct {
	Path  PathID
	Time  float64
	Class ErrClass
}

// Progress reports payload bytes flowing through a streaming transfer:
// Delivered of the Total requested bytes have arrived, the last Chunk of
// them just now. The real transport emits one per stream-buffer fill
// (64 KB granularity), so a live consumer can show per-transfer progress
// without waiting for TransferFinished. A transfer that is retried cold
// restarts its Delivered count at zero.
type Progress struct {
	Path      PathID
	Time      float64
	Offset    int64 // range start of the transfer
	Chunk     int64 // bytes in this increment
	Delivered int64 // cumulative bytes delivered by this attempt
	Total     int64 // bytes requested
}

// ProgressObserver is an optional Observer extension for byte-level
// progress. It is separate from Observer because progress events fire per
// buffer chunk — orders of magnitude more often than lifecycle events —
// and most observers (the Tracer in particular) should not pay for them.
// Emitters deliver progress only to observers that also implement this
// interface; use EmitProgress to do the type assertion in one place.
type ProgressObserver interface {
	TransferProgress(Progress)
}

// EmitProgress delivers e to o when o implements ProgressObserver; a nil
// or progress-blind observer costs one type assertion.
func EmitProgress(o Observer, e Progress) {
	if po, ok := o.(ProgressObserver); ok {
		po.TransferProgress(e)
	}
}

// PoolOp names a connection-pool transition.
type PoolOp uint8

// Pool transitions: a warm fetch taking a parked connection (reuse) or
// finding none usable (miss), a finished transfer parking its connection,
// an idle connection dropped by TTL expiry or Close (evict), and a
// connection turned away because the path's idle slots were full
// (discard).
const (
	PoolReuse PoolOp = iota
	PoolMiss
	PoolPark
	PoolEvict
	PoolDiscard
)

func (op PoolOp) String() string {
	switch op {
	case PoolReuse:
		return "reuse"
	case PoolMiss:
		return "miss"
	case PoolPark:
		return "park"
	case PoolEvict:
		return "evict"
	case PoolDiscard:
		return "discard"
	}
	return "unknown"
}

// Pool reports a connection-pool transition on one route. Key is the
// route label ("direct" or the relay name), mirroring PathID.Label();
// pool slots are per-path, not per-object, so there is no object identity
// to carry.
type Pool struct {
	Key  string
	Time float64
	Op   PoolOp
}

// PoolObserver is an optional Observer extension for connection-pool
// lifecycle events. Like ProgressObserver, it is separate so observers
// that only care about selection lifecycle need not implement it.
type PoolObserver interface {
	PoolEvent(Pool)
}

// EmitPool delivers e to o when o implements PoolObserver.
func EmitPool(o Observer, e Pool) {
	if po, ok := o.(PoolObserver); ok {
		po.PoolEvent(e)
	}
}

// Observer receives selection-lifecycle events. Implementations must be
// safe for concurrent use: races probe paths in parallel and the real
// transport emits from transfer goroutines. Embed Base to implement only
// the callbacks of interest.
type Observer interface {
	ProbeStarted(ProbeStart)
	ProbeFinished(ProbeEnd)
	ProbeCanceled(ProbeCancel)
	PathSelected(Selection)
	TransferStarted(TransferStart)
	TransferFinished(TransferEnd)
	RetryScheduled(Retry)
	TransferAborted(Abort)
}

// Base is a no-op Observer for embedding, so custom observers implement
// only the callbacks they care about.
type Base struct{}

func (Base) ProbeStarted(ProbeStart)       {}
func (Base) ProbeFinished(ProbeEnd)        {}
func (Base) ProbeCanceled(ProbeCancel)     {}
func (Base) PathSelected(Selection)        {}
func (Base) TransferStarted(TransferStart) {}
func (Base) TransferFinished(TransferEnd)  {}
func (Base) RetryScheduled(Retry)          {}
func (Base) TransferAborted(Abort)         {}

var _ Observer = Base{}

// Multi fans events out to several observers in order. Nil entries are
// skipped; with no live observers it returns nil, which emitters treat as
// "don't emit".
func Multi(obs ...Observer) Observer {
	var live multi
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

type multi []Observer

func (m multi) ProbeStarted(e ProbeStart) {
	for _, o := range m {
		o.ProbeStarted(e)
	}
}
func (m multi) ProbeFinished(e ProbeEnd) {
	for _, o := range m {
		o.ProbeFinished(e)
	}
}
func (m multi) ProbeCanceled(e ProbeCancel) {
	for _, o := range m {
		o.ProbeCanceled(e)
	}
}
func (m multi) PathSelected(e Selection) {
	for _, o := range m {
		o.PathSelected(e)
	}
}
func (m multi) TransferStarted(e TransferStart) {
	for _, o := range m {
		o.TransferStarted(e)
	}
}
func (m multi) TransferFinished(e TransferEnd) {
	for _, o := range m {
		o.TransferFinished(e)
	}
}
func (m multi) RetryScheduled(e Retry) {
	for _, o := range m {
		o.RetryScheduled(e)
	}
}
func (m multi) TransferAborted(e Abort) {
	for _, o := range m {
		o.TransferAborted(e)
	}
}

// multi implements the optional extensions too, forwarding to whichever
// members implement them — so wrapping observers in Multi never hides
// progress or pool events from a sink that wants them.
func (m multi) TransferProgress(e Progress) {
	for _, o := range m {
		EmitProgress(o, e)
	}
}
func (m multi) PoolEvent(e Pool) {
	for _, o := range m {
		EmitPool(o, e)
	}
}

var (
	_ ProgressObserver = multi(nil)
	_ PoolObserver     = multi(nil)
)
