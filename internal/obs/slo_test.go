package obs

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestSLODefaultsAndBurnMath(t *testing.T) {
	tr := NewSLOTracker(SLOConfig{})
	cfg := tr.Config()
	if cfg.AvailabilityObjective != 0.995 || cfg.LatencyThreshold != 1.0 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	// 99 ok + 1 failure = 1% bad against a 0.5% budget: burn rate 2.
	for i := 0; i < 99; i++ {
		tr.ObserveAt(float64(i)*0.1, true, 0.01)
	}
	tr.ObserveAt(9.9, false, 0)
	s := tr.Snapshot(-1)
	if s.AvailabilityFast.Total != 100 || s.AvailabilityFast.Bad != 1 {
		t.Fatalf("fast window = %+v, want 100 total / 1 bad", s.AvailabilityFast)
	}
	if got, want := s.AvailabilityFast.BurnRate, 2.0; got < want-0.01 || got > want+0.01 {
		t.Fatalf("availability burn = %v, want ~%v", got, want)
	}
	// No latency violations: zero burn, full compliance.
	if s.LatencyFast.BurnRate != 0 || s.LatencyFast.Compliance != 1 {
		t.Fatalf("latency window = %+v, want no burn", s.LatencyFast)
	}
}

func TestSLOLatencyViolations(t *testing.T) {
	tr := NewSLOTracker(SLOConfig{LatencyThreshold: 0.1, LatencyObjective: 0.9})
	for i := 0; i < 8; i++ {
		tr.ObserveAt(float64(i), true, 0.01)
	}
	tr.ObserveAt(8, true, 5.0) // slow success: latency violation only
	tr.ObserveAt(9, false, 0)  // failure: availability violation only
	s := tr.Snapshot(-1)
	if s.LatencyFast.Bad != 1 || s.LatencyFast.Total != 9 {
		t.Fatalf("latency window = %+v, want 9 total / 1 bad", s.LatencyFast)
	}
	if s.AvailabilityFast.Bad != 1 {
		t.Fatalf("availability bad = %d, want 1", s.AvailabilityFast.Bad)
	}
	if s.SlowTotal != 1 || s.FailedTotal != 1 {
		t.Fatalf("lifetime counters slow=%d failed=%d, want 1/1", s.SlowTotal, s.FailedTotal)
	}
}

func TestSLOWindowRotation(t *testing.T) {
	tr := NewSLOTracker(SLOConfig{FastWindow: 10, FastBuckets: 10, SlowWindow: 100, SlowBuckets: 10})
	tr.ObserveAt(0, false, 0)
	tr.ObserveAt(50, true, 0.01)
	s := tr.Snapshot(50)
	// The failure at t=0 has rotated out of the 10 s fast window but is
	// still inside the 100 s slow window.
	if s.AvailabilityFast.Bad != 0 {
		t.Fatalf("fast window still holds rotated failure: %+v", s.AvailabilityFast)
	}
	if s.AvailabilitySlow.Bad != 1 {
		t.Fatalf("slow window lost live failure: %+v", s.AvailabilitySlow)
	}
	// Lifetime counters never rotate.
	if s.FailedTotal != 1 {
		t.Fatalf("lifetime failed = %d, want 1", s.FailedTotal)
	}
}

func TestSLOSnapshotJSONAndProm(t *testing.T) {
	tr := NewSLOTracker(SLOConfig{})
	tr.ObserveAt(1, true, 0.05)
	s := tr.Snapshot(-1)
	var decoded SLOSnapshot
	if err := json.Unmarshal(s.JSON(), &decoded); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if decoded.Total != 1 {
		t.Fatalf("decoded total = %d, want 1", decoded.Total)
	}
	p := NewProm()
	s.WriteProm(p, "x")
	if err := LintProm(p.Bytes()); err != nil {
		t.Fatalf("prom lint: %v\n%s", err, p.Bytes())
	}
}

func TestSLOObjectiveOneBurnStaysFinite(t *testing.T) {
	// The regression: an objective of 1.0 (or a typo'd 1.5) used to make
	// the burn denominator 1−objective zero or negative, so one failure
	// rendered burn_rate as ±Inf on /metrics and wedged every threshold
	// comparison. The clamp floors the error budget instead.
	for _, objective := range []float64{1.0, 1.5} {
		tr := NewSLOTracker(SLOConfig{AvailabilityObjective: objective})
		if got := tr.Config().AvailabilityObjective; got != 1 {
			t.Fatalf("objective %v normalized to %v, want clamp to 1", objective, got)
		}
		tr.ObserveAt(1, true, 0.05)
		tr.ObserveAt(2, false, 0)
		s := tr.Snapshot(-1)
		burn := s.AvailabilityFast.BurnRate
		if math.IsInf(burn, 0) || math.IsNaN(burn) {
			t.Fatalf("objective %v: burn = %v, want finite", objective, burn)
		}
		if burn <= 0 {
			t.Fatalf("objective %v: burn = %v, want huge positive per failure", objective, burn)
		}
		// The finite burn must survive Prometheus rendering and linting.
		p := NewProm()
		s.WriteProm(p, "x")
		if err := LintProm(p.Bytes()); err != nil {
			t.Fatalf("objective %v: prom lint: %v", objective, err)
		}
		if strings.Contains(string(p.Bytes()), "Inf") {
			t.Fatalf("objective %v: /metrics still renders Inf:\n%s", objective, p.Bytes())
		}
	}
}

func TestSLOOnFastBurnFires(t *testing.T) {
	type alert struct {
		path string
		burn float64
	}
	var alerts []alert
	tr := NewSLOTracker(SLOConfig{
		AvailabilityObjective: 0.9, // error budget 0.1 → one failure in 2 burns at 5
		AlertBurn:             2,
		OnFastBurn: func(path string, burn float64) {
			alerts = append(alerts, alert{path, burn})
		},
	})
	tr.ObservePathAt("relay-a", 1, true, 0.05)
	if len(alerts) != 0 {
		t.Fatalf("success fired an alert: %+v", alerts)
	}
	tr.ObservePathAt("relay-a", 2, false, 0)
	if len(alerts) != 1 {
		t.Fatalf("got %d alerts, want 1", len(alerts))
	}
	if alerts[0].path != "relay-a" {
		t.Fatalf("alert path = %q, want relay-a", alerts[0].path)
	}
	// 1 failed / 2 total over budget 0.1 → burn 5.
	if got := alerts[0].burn; math.Abs(got-5) > 1e-9 {
		t.Fatalf("alert burn = %v, want 5", got)
	}
	// Path-blind feeding still alerts, with an empty path key.
	alerts = nil
	tr2 := NewSLOTracker(SLOConfig{
		AvailabilityObjective: 0.9,
		OnFastBurn:            func(path string, burn float64) { alerts = append(alerts, alert{path, burn}) },
	})
	tr2.ObserveAt(1, false, 0)
	if len(alerts) != 1 || alerts[0].path != "" {
		t.Fatalf("path-blind alerts = %+v", alerts)
	}
}

func TestSLOOnFastBurnBelowThresholdSilent(t *testing.T) {
	fired := 0
	tr := NewSLOTracker(SLOConfig{
		AvailabilityObjective: 0.5, // budget 0.5: one failure in 10 burns at 0.2
		AlertBurn:             2,
		OnFastBurn:            func(string, float64) { fired++ },
	})
	for i := 0; i < 9; i++ {
		tr.ObserveAt(float64(i), true, 0.05)
	}
	tr.ObserveAt(9, false, 0)
	if fired != 0 {
		t.Fatalf("sub-threshold burn fired %d alerts", fired)
	}
}
