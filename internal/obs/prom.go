// Prometheus text-format exposition, hand-rolled over the package's own
// snapshot types: counters, gauges, and cumulative histograms with
// explicit buckets rendered from the fixed-bucket stats histograms. The
// daemons serve the result on /metrics so any Prometheus-compatible
// scraper can watch the relay fleet without this repo taking a client
// dependency. LintProm is the matching minimal parser, used by the test
// suite to keep the output well-formed.

package obs

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromContentType is the content-type of the classic text exposition
// format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// OpenMetricsContentType is the content-type of the OpenMetrics text
// exposition. Served when the scraper's Accept header asks for it; the
// payload is the classic exposition plus bucket exemplars and the
// closing # EOF marker.
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// AcceptsOpenMetrics reports whether an Accept header value asks for
// the OpenMetrics exposition. Matching is deliberately loose — any
// listed media type of application/openmetrics-text, regardless of
// parameters or q-weights, selects it; everything else (including an
// absent header) gets the classic text format.
func AcceptsOpenMetrics(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt, _, _ := strings.Cut(part, ";")
		if strings.TrimSpace(mt) == "application/openmetrics-text" {
			return true
		}
	}
	return false
}

// promHistMaxBuckets bounds how many explicit buckets a rendered
// histogram emits: the 200-bin snapshots are coarsened (cumulative
// counts make merging bins exact) so a scrape stays readable.
const promHistMaxBuckets = 20

// Prom accumulates metric families and renders the text exposition
// format. Not safe for concurrent use; build one per scrape.
type Prom struct {
	b  bytes.Buffer
	om bool
}

// NewProm returns an empty exposition builder for the classic text
// format.
func NewProm() *Prom { return &Prom{} }

// NewOpenMetricsProm returns a builder for the OpenMetrics flavor: the
// same families and samples as the classic format (so the two stay
// diffable), with histogram bucket exemplars attached and a # EOF
// terminator appended by Bytes. It is a subset of OpenMetrics, not a
// full implementation — families keep their classic names and TYPE
// spellings — validated by LintOpenMetrics.
func NewOpenMetricsProm() *Prom { return &Prom{om: true} }

// ContentType returns the content-type header value matching the
// builder's format.
func (p *Prom) ContentType() string {
	if p.om {
		return OpenMetricsContentType
	}
	return PromContentType
}

// Bytes returns the accumulated exposition (with the terminating # EOF
// marker in OpenMetrics mode).
func (p *Prom) Bytes() []byte {
	out := append([]byte(nil), p.b.Bytes()...)
	if p.om {
		out = append(out, "# EOF\n"...)
	}
	return out
}

func (p *Prom) head(name, typ, help string) {
	help = strings.ReplaceAll(help, "\\", `\\`)
	help = strings.ReplaceAll(help, "\n", `\n`)
	fmt.Fprintf(&p.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func promLabel(v string) string {
	v = strings.ReplaceAll(v, "\\", `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// Counter emits a single-sample counter family.
func (p *Prom) Counter(name, help string, v float64) {
	p.head(name, "counter", help)
	fmt.Fprintf(&p.b, "%s %s\n", name, promFloat(v))
}

// Gauge emits a single-sample gauge family.
func (p *Prom) Gauge(name, help string, v float64) {
	p.head(name, "gauge", help)
	fmt.Fprintf(&p.b, "%s %s\n", name, promFloat(v))
}

// LabeledCounter emits one counter family with one sample per value of a
// single label, in sorted label order (a stable scrape diff).
func (p *Prom) LabeledCounter(name, help, label string, samples map[string]float64) {
	p.head(name, "counter", help)
	keys := make([]string, 0, len(samples))
	for k := range samples {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&p.b, "%s{%s=\"%s\"} %s\n", name, label, promLabel(k), promFloat(samples[k]))
	}
}

// LabeledGauge emits one gauge family with one sample per value of a
// single label, in sorted label order.
func (p *Prom) LabeledGauge(name, help, label string, samples map[string]float64) {
	p.head(name, "gauge", help)
	keys := make([]string, 0, len(samples))
	for k := range samples {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&p.b, "%s{%s=\"%s\"} %s\n", name, label, promLabel(k), promFloat(samples[k]))
	}
}

// Histogram emits a cumulative-bucket histogram family from a snapshot.
// Bucket edges are the snapshot's bin edges, coarsened to at most
// promHistMaxBuckets explicit le bounds plus +Inf; underflow counts into
// every bucket (an observation below Lo is ≤ any edge) and overflow only
// into +Inf. The _sum comes straight from the snapshot — exact for
// striped recorders, a bin-center estimate otherwise. In OpenMetrics
// mode each explicit bucket carries the most recent exemplar whose
// observation landed in the bin range the coarsened bucket covers.
func (p *Prom) Histogram(name, help string, h HistogramSnapshot) {
	p.head(name, "histogram", help)
	nbins := len(h.Bins)
	width := 0.0
	if nbins > 0 {
		width = (h.Hi - h.Lo) / float64(nbins)
	}
	step := 1
	if nbins > promHistMaxBuckets {
		step = (nbins + promHistMaxBuckets - 1) / promHistMaxBuckets
	}
	cum := h.Underflow
	lowBin := 0
	for i := 0; i < nbins; i++ {
		cum += h.Bins[i]
		if (i+1)%step == 0 || i == nbins-1 {
			edge := h.Lo + float64(i+1)*width
			fmt.Fprintf(&p.b, "%s_bucket{le=%q} %d", name, promFloat(edge), cum)
			p.exemplar(h.Exemplars, lowBin, i)
			p.b.WriteByte('\n')
			lowBin = i + 1
		}
	}
	fmt.Fprintf(&p.b, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Total)
	fmt.Fprintf(&p.b, "%s_sum %s\n", name, promFloat(h.Sum))
	fmt.Fprintf(&p.b, "%s_count %d\n", name, h.Total)
}

// exemplar appends, in OpenMetrics mode, the freshest exemplar whose
// bin falls inside [lo, hi] as an exemplar suffix on the current bucket
// line. Timestamps render in seconds, the OpenMetrics unit.
func (p *Prom) exemplar(exemplars []Exemplar, lo, hi int) {
	if !p.om {
		return
	}
	best := -1
	for i, e := range exemplars {
		if e.Bin < lo || e.Bin > hi || e.Trace.IsZero() {
			continue
		}
		if best < 0 || e.Time > exemplars[best].Time {
			best = i
		}
	}
	if best < 0 {
		return
	}
	e := exemplars[best]
	ts := float64(e.Time) / 1e9
	fmt.Fprintf(&p.b, " # {trace_id=%q} %s %s",
		e.Trace.String(), promFloat(e.Value), strconv.FormatFloat(ts, 'f', 3, 64))
}

// HistogramEdges emits a cumulative-bucket histogram family from
// explicit bucket edges, the shape runtime/metrics hands back:
// counts[i] covers [edges[i], edges[i+1]), len(edges) == len(counts)+1,
// and the first/last edges may be infinite. Buckets are coarsened to at
// most promHistMaxBuckets explicit bounds plus +Inf; _sum is a
// midpoint estimate with infinite edges valued at their finite
// neighbor.
func (p *Prom) HistogramEdges(name, help string, edges []float64, counts []uint64) {
	p.head(name, "histogram", help)
	n := len(counts)
	if n == 0 || len(edges) != n+1 {
		fmt.Fprintf(&p.b, "%s_bucket{le=\"+Inf\"} 0\n%s_sum 0\n%s_count 0\n", name, name, name)
		return
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	step := 1
	if n > promHistMaxBuckets {
		step = (n + promHistMaxBuckets - 1) / promHistMaxBuckets
	}
	var cum uint64
	sum := 0.0
	for i := 0; i < n; i++ {
		cum += counts[i]
		lo, hi := edges[i], edges[i+1]
		mid := 0.0
		switch {
		case math.IsInf(lo, -1) && math.IsInf(hi, 1):
		case math.IsInf(lo, -1):
			mid = hi
		case math.IsInf(hi, 1):
			mid = lo
		default:
			mid = (lo + hi) / 2
		}
		sum += float64(counts[i]) * mid
		if ((i+1)%step == 0 || i == n-1) && !math.IsInf(hi, 1) {
			fmt.Fprintf(&p.b, "%s_bucket{le=%q} %d\n", name, promFloat(hi), cum)
		}
	}
	fmt.Fprintf(&p.b, "%s_bucket{le=\"+Inf\"} %d\n", name, total)
	fmt.Fprintf(&p.b, "%s_sum %s\n", name, promFloat(sum))
	fmt.Fprintf(&p.b, "%s_count %d\n", name, total)
}

// WriteProm renders the whole metrics snapshot as Prometheus families
// under the given prefix (e.g. "indirect"): the counters, the per-path
// utilization tallies as labeled counters, and both histograms with
// explicit buckets. The fetch client and realbench expose exactly what
// the daemons expose, one code path.
func (s Snapshot) WriteProm(p *Prom, prefix string) {
	c := func(name, help string, v int64) { p.Counter(prefix+"_"+name, help, float64(v)) }
	c("probes_started_total", "Probes launched.", s.ProbesStarted)
	c("probes_finished_total", "Probes completed, any outcome.", s.ProbesFinished)
	c("probes_failed_total", "Probes failed with a non-cancellation error.", s.ProbesFailed)
	c("probes_canceled_total", "Losing probes reaped by the engine.", s.ProbesCanceled)
	c("selections_total", "Selection operations committed.", s.Selections)
	c("selections_indirect_total", "Selections won by an indirect path.", s.SelectionsIndirect)
	c("transfers_started_total", "Payload transfers issued.", s.TransfersStarted)
	c("transfers_finished_total", "Payload transfers completed, any outcome.", s.TransfersFinished)
	c("transfers_failed_total", "Payload transfers failed.", s.TransfersFailed)
	c("retries_total", "Transport-level cold retries.", s.Retries)
	c("aborts_total", "Transfers torn down by context death.", s.Aborts)
	c("bytes_delivered_total", "Payload bytes of successful probes and transfers.", s.BytesDelivered)
	c("bytes_streamed_total", "Payload bytes observed in flight, including failed attempts.", s.BytesStreamed)
	c("pool_reuses_total", "Warm fetches served by a parked connection.", s.PoolReuses)
	c("pool_misses_total", "Warm fetches that found no usable parked connection.", s.PoolMisses)

	if len(s.Paths) > 0 {
		probed := make(map[string]float64, len(s.Paths))
		selected := make(map[string]float64, len(s.Paths))
		bytes := make(map[string]float64, len(s.Paths))
		for label, ps := range s.Paths {
			probed[label] = float64(ps.Probed)
			selected[label] = float64(ps.Selected)
			bytes[label] = float64(ps.Bytes)
		}
		p.LabeledCounter(prefix+"_path_probed_total", "Times the route appeared in a race.", "route", probed)
		p.LabeledCounter(prefix+"_path_selected_total", "Times the route won the commit.", "route", selected)
		p.LabeledCounter(prefix+"_path_bytes_total", "Payload bytes delivered over the route.", "route", bytes)
	}

	p.Histogram(prefix+"_probe_latency_seconds", "Successful probe durations.", s.ProbeLatencySeconds)
	p.Histogram(prefix+"_transfer_mbps", "Successful transfer throughputs in Mb/s.", s.TransferMbps)
}

// LintProm is the test suite's minimal validity check for the text
// exposition format. It verifies that every line is a well-formed HELP,
// TYPE, or sample line; that metric names are legal; that sample values
// parse; that every sample belongs to a family announced by a TYPE line;
// and that histogram bucket counts are cumulative (non-decreasing, with
// a closing +Inf bucket). It is a lint, not a full parser: labels are
// checked structurally, not decoded.
func LintProm(b []byte) error {
	typed := make(map[string]string)
	lastBucket := make(map[string]float64) // family -> last cumulative count
	sawInf := make(map[string]bool)
	for ln, line := range strings.Split(string(b), "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, err := promComment(line)
			if err != nil {
				return fmt.Errorf("prom lint: line %d: %v", lineNo, err)
			}
			if kind == "TYPE" {
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("prom lint: line %d: bad TYPE %q", lineNo, rest)
				}
				typed[name] = rest
			}
			continue
		}
		name, labels, value, err := promSample(line)
		if err != nil {
			return fmt.Errorf("prom lint: line %d: %v", lineNo, err)
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if t, ok := typed[strings.TrimSuffix(name, suffix)]; ok && t == "histogram" {
				family = strings.TrimSuffix(name, suffix)
				break
			}
		}
		if _, ok := typed[family]; !ok {
			return fmt.Errorf("prom lint: line %d: sample %q has no TYPE line", lineNo, name)
		}
		if strings.HasSuffix(name, "_bucket") && typed[family] == "histogram" {
			le, ok := promLE(labels)
			if !ok {
				return fmt.Errorf("prom lint: line %d: bucket without le label", lineNo)
			}
			if value < lastBucket[family] {
				return fmt.Errorf("prom lint: line %d: bucket counts of %s not cumulative", lineNo, family)
			}
			lastBucket[family] = value
			if le == "+Inf" {
				sawInf[family] = true
			}
		}
	}
	for family, typ := range typed {
		if typ == "histogram" && lastBucket[family] >= 0 && !sawInf[family] {
			return fmt.Errorf("prom lint: histogram %s has no +Inf bucket", family)
		}
	}
	return nil
}

// LintOpenMetrics validates the OpenMetrics flavor of the exposition:
// the payload must end with the # EOF marker, exemplar suffixes may
// only appear on _bucket sample lines and must be syntactically sound
// ({labels} value [timestamp]), and what remains after stripping both
// must pass LintProm unchanged — the OpenMetrics output is the classic
// one plus annotations, never a different exposition.
func LintOpenMetrics(b []byte) error {
	s := string(b)
	if !strings.HasSuffix(s, "# EOF\n") {
		return fmt.Errorf("openmetrics lint: missing terminating # EOF")
	}
	s = strings.TrimSuffix(s, "# EOF\n")
	var classic strings.Builder
	for ln, line := range strings.Split(s, "\n") {
		lineNo := ln + 1
		body := line
		if i := strings.Index(line, " # "); i >= 0 && !strings.HasPrefix(line, "#") {
			body = line[:i]
			ex := line[i+3:]
			if !strings.Contains(body, "_bucket") {
				return fmt.Errorf("openmetrics lint: line %d: exemplar on non-bucket sample", lineNo)
			}
			if err := lintExemplar(ex); err != nil {
				return fmt.Errorf("openmetrics lint: line %d: %v", lineNo, err)
			}
		}
		classic.WriteString(body)
		classic.WriteByte('\n')
	}
	return LintProm([]byte(classic.String()))
}

// lintExemplar checks one exemplar annotation: {label="value",...}
// followed by a float value and an optional float timestamp.
func lintExemplar(ex string) error {
	if !strings.HasPrefix(ex, "{") {
		return fmt.Errorf("exemplar %q does not start with labels", ex)
	}
	end := strings.IndexByte(ex, '}')
	if end < 0 {
		return fmt.Errorf("exemplar %q has unbalanced labels", ex)
	}
	for _, pair := range splitLabels(ex[1:end]) {
		k, v, ok := strings.Cut(pair, "=")
		if !ok || !promName(k) || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return fmt.Errorf("bad exemplar label %q", pair)
		}
	}
	fields := strings.Fields(ex[end+1:])
	if len(fields) != 1 && len(fields) != 2 {
		return fmt.Errorf("exemplar %q needs a value and optional timestamp", ex)
	}
	for _, f := range fields {
		if _, err := strconv.ParseFloat(f, 64); err != nil {
			return fmt.Errorf("bad exemplar number %q", f)
		}
	}
	return nil
}

func promName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func promComment(line string) (kind, name, rest string, err error) {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return "", "", "", fmt.Errorf("malformed comment %q", line)
	}
	kind = fields[1]
	if kind != "HELP" && kind != "TYPE" {
		return "", "", "", fmt.Errorf("unknown comment kind %q", kind)
	}
	name = fields[2]
	if !promName(name) {
		return "", "", "", fmt.Errorf("bad metric name %q", name)
	}
	if len(fields) == 4 {
		rest = fields[3]
	}
	return kind, name, rest, nil
}

func promSample(line string) (name, labels string, value float64, err error) {
	body := line
	if i := strings.IndexByte(body, '{'); i >= 0 {
		j := strings.LastIndexByte(body, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unbalanced labels in %q", line)
		}
		name, labels = body[:i], body[i+1:j]
		body = name + body[j+1:]
		if labels != "" {
			for _, pair := range splitLabels(labels) {
				k, v, ok := strings.Cut(pair, "=")
				if !ok || !promName(k) || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
					return "", "", 0, fmt.Errorf("bad label %q in %q", pair, line)
				}
			}
		}
	}
	fields := strings.Fields(body)
	if len(fields) != 2 && len(fields) != 3 { // optional timestamp
		return "", "", 0, fmt.Errorf("malformed sample %q", line)
	}
	name = fields[0]
	if i := strings.IndexByte(name, '{'); i >= 0 {
		name = name[:i]
	}
	if !promName(name) {
		return "", "", 0, fmt.Errorf("bad metric name %q", name)
	}
	value, err = strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("bad value %q", fields[1])
	}
	return name, labels, value, nil
}

// splitLabels splits a label body on commas outside quoted values.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// promLE extracts the le label value from a bucket's label body.
func promLE(labels string) (string, bool) {
	for _, pair := range splitLabels(labels) {
		if k, v, ok := strings.Cut(pair, "="); ok && k == "le" && len(v) >= 2 {
			return v[1 : len(v)-1], true
		}
	}
	return "", false
}
