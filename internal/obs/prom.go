// Prometheus text-format exposition, hand-rolled over the package's own
// snapshot types: counters, gauges, and cumulative histograms with
// explicit buckets rendered from the fixed-bucket stats histograms. The
// daemons serve the result on /metrics so any Prometheus-compatible
// scraper can watch the relay fleet without this repo taking a client
// dependency. LintProm is the matching minimal parser, used by the test
// suite to keep the output well-formed.

package obs

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// PromContentType is the content-type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promHistMaxBuckets bounds how many explicit buckets a rendered
// histogram emits: the 200-bin snapshots are coarsened (cumulative
// counts make merging bins exact) so a scrape stays readable.
const promHistMaxBuckets = 20

// Prom accumulates metric families and renders the text exposition
// format. Not safe for concurrent use; build one per scrape.
type Prom struct {
	b bytes.Buffer
}

// NewProm returns an empty exposition builder.
func NewProm() *Prom { return &Prom{} }

// Bytes returns the accumulated exposition.
func (p *Prom) Bytes() []byte { return append([]byte(nil), p.b.Bytes()...) }

func (p *Prom) head(name, typ, help string) {
	help = strings.ReplaceAll(help, "\\", `\\`)
	help = strings.ReplaceAll(help, "\n", `\n`)
	fmt.Fprintf(&p.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func promLabel(v string) string {
	v = strings.ReplaceAll(v, "\\", `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// Counter emits a single-sample counter family.
func (p *Prom) Counter(name, help string, v float64) {
	p.head(name, "counter", help)
	fmt.Fprintf(&p.b, "%s %s\n", name, promFloat(v))
}

// Gauge emits a single-sample gauge family.
func (p *Prom) Gauge(name, help string, v float64) {
	p.head(name, "gauge", help)
	fmt.Fprintf(&p.b, "%s %s\n", name, promFloat(v))
}

// LabeledCounter emits one counter family with one sample per value of a
// single label, in sorted label order (a stable scrape diff).
func (p *Prom) LabeledCounter(name, help, label string, samples map[string]float64) {
	p.head(name, "counter", help)
	keys := make([]string, 0, len(samples))
	for k := range samples {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&p.b, "%s{%s=%q} %s\n", name, label, promLabel(k), promFloat(samples[k]))
	}
}

// LabeledGauge emits one gauge family with one sample per value of a
// single label, in sorted label order.
func (p *Prom) LabeledGauge(name, help, label string, samples map[string]float64) {
	p.head(name, "gauge", help)
	keys := make([]string, 0, len(samples))
	for k := range samples {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&p.b, "%s{%s=%q} %s\n", name, label, promLabel(k), promFloat(samples[k]))
	}
}

// Histogram emits a cumulative-bucket histogram family from a snapshot.
// Bucket edges are the snapshot's bin edges, coarsened to at most
// promHistMaxBuckets explicit le bounds plus +Inf; underflow counts into
// every bucket (an observation below Lo is ≤ any edge) and overflow only
// into +Inf. The _sum is approximated from bin centers — the snapshots
// deliberately do not carry exact sums — with under/overflow valued at
// the histogram edges.
func (p *Prom) Histogram(name, help string, h HistogramSnapshot) {
	p.head(name, "histogram", help)
	nbins := len(h.Bins)
	width := 0.0
	if nbins > 0 {
		width = (h.Hi - h.Lo) / float64(nbins)
	}
	step := 1
	if nbins > promHistMaxBuckets {
		step = (nbins + promHistMaxBuckets - 1) / promHistMaxBuckets
	}
	cum := h.Underflow
	sum := float64(h.Underflow)*h.Lo + float64(h.Overflow)*h.Hi
	for i := 0; i < nbins; i++ {
		cum += h.Bins[i]
		sum += float64(h.Bins[i]) * (h.Lo + (float64(i)+0.5)*width)
		if (i+1)%step == 0 || i == nbins-1 {
			edge := h.Lo + float64(i+1)*width
			fmt.Fprintf(&p.b, "%s_bucket{le=%q} %d\n", name, promFloat(edge), cum)
		}
	}
	fmt.Fprintf(&p.b, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Total)
	fmt.Fprintf(&p.b, "%s_sum %s\n", name, promFloat(sum))
	fmt.Fprintf(&p.b, "%s_count %d\n", name, h.Total)
}

// WriteProm renders the whole metrics snapshot as Prometheus families
// under the given prefix (e.g. "indirect"): the counters, the per-path
// utilization tallies as labeled counters, and both histograms with
// explicit buckets. The fetch client and realbench expose exactly what
// the daemons expose, one code path.
func (s Snapshot) WriteProm(p *Prom, prefix string) {
	c := func(name, help string, v int64) { p.Counter(prefix+"_"+name, help, float64(v)) }
	c("probes_started_total", "Probes launched.", s.ProbesStarted)
	c("probes_finished_total", "Probes completed, any outcome.", s.ProbesFinished)
	c("probes_failed_total", "Probes failed with a non-cancellation error.", s.ProbesFailed)
	c("probes_canceled_total", "Losing probes reaped by the engine.", s.ProbesCanceled)
	c("selections_total", "Selection operations committed.", s.Selections)
	c("selections_indirect_total", "Selections won by an indirect path.", s.SelectionsIndirect)
	c("transfers_started_total", "Payload transfers issued.", s.TransfersStarted)
	c("transfers_finished_total", "Payload transfers completed, any outcome.", s.TransfersFinished)
	c("transfers_failed_total", "Payload transfers failed.", s.TransfersFailed)
	c("retries_total", "Transport-level cold retries.", s.Retries)
	c("aborts_total", "Transfers torn down by context death.", s.Aborts)
	c("bytes_delivered_total", "Payload bytes of successful probes and transfers.", s.BytesDelivered)
	c("bytes_streamed_total", "Payload bytes observed in flight, including failed attempts.", s.BytesStreamed)
	c("pool_reuses_total", "Warm fetches served by a parked connection.", s.PoolReuses)
	c("pool_misses_total", "Warm fetches that found no usable parked connection.", s.PoolMisses)

	if len(s.Paths) > 0 {
		probed := make(map[string]float64, len(s.Paths))
		selected := make(map[string]float64, len(s.Paths))
		bytes := make(map[string]float64, len(s.Paths))
		for label, ps := range s.Paths {
			probed[label] = float64(ps.Probed)
			selected[label] = float64(ps.Selected)
			bytes[label] = float64(ps.Bytes)
		}
		p.LabeledCounter(prefix+"_path_probed_total", "Times the route appeared in a race.", "route", probed)
		p.LabeledCounter(prefix+"_path_selected_total", "Times the route won the commit.", "route", selected)
		p.LabeledCounter(prefix+"_path_bytes_total", "Payload bytes delivered over the route.", "route", bytes)
	}

	p.Histogram(prefix+"_probe_latency_seconds", "Successful probe durations.", s.ProbeLatencySeconds)
	p.Histogram(prefix+"_transfer_mbps", "Successful transfer throughputs in Mb/s.", s.TransferMbps)
}

// LintProm is the test suite's minimal validity check for the text
// exposition format. It verifies that every line is a well-formed HELP,
// TYPE, or sample line; that metric names are legal; that sample values
// parse; that every sample belongs to a family announced by a TYPE line;
// and that histogram bucket counts are cumulative (non-decreasing, with
// a closing +Inf bucket). It is a lint, not a full parser: labels are
// checked structurally, not decoded.
func LintProm(b []byte) error {
	typed := make(map[string]string)
	lastBucket := make(map[string]float64) // family -> last cumulative count
	sawInf := make(map[string]bool)
	for ln, line := range strings.Split(string(b), "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, err := promComment(line)
			if err != nil {
				return fmt.Errorf("prom lint: line %d: %v", lineNo, err)
			}
			if kind == "TYPE" {
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("prom lint: line %d: bad TYPE %q", lineNo, rest)
				}
				typed[name] = rest
			}
			continue
		}
		name, labels, value, err := promSample(line)
		if err != nil {
			return fmt.Errorf("prom lint: line %d: %v", lineNo, err)
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if t, ok := typed[strings.TrimSuffix(name, suffix)]; ok && t == "histogram" {
				family = strings.TrimSuffix(name, suffix)
				break
			}
		}
		if _, ok := typed[family]; !ok {
			return fmt.Errorf("prom lint: line %d: sample %q has no TYPE line", lineNo, name)
		}
		if strings.HasSuffix(name, "_bucket") && typed[family] == "histogram" {
			le, ok := promLE(labels)
			if !ok {
				return fmt.Errorf("prom lint: line %d: bucket without le label", lineNo)
			}
			if value < lastBucket[family] {
				return fmt.Errorf("prom lint: line %d: bucket counts of %s not cumulative", lineNo, family)
			}
			lastBucket[family] = value
			if le == "+Inf" {
				sawInf[family] = true
			}
		}
	}
	for family, typ := range typed {
		if typ == "histogram" && lastBucket[family] >= 0 && !sawInf[family] {
			return fmt.Errorf("prom lint: histogram %s has no +Inf bucket", family)
		}
	}
	return nil
}

func promName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func promComment(line string) (kind, name, rest string, err error) {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return "", "", "", fmt.Errorf("malformed comment %q", line)
	}
	kind = fields[1]
	if kind != "HELP" && kind != "TYPE" {
		return "", "", "", fmt.Errorf("unknown comment kind %q", kind)
	}
	name = fields[2]
	if !promName(name) {
		return "", "", "", fmt.Errorf("bad metric name %q", name)
	}
	if len(fields) == 4 {
		rest = fields[3]
	}
	return kind, name, rest, nil
}

func promSample(line string) (name, labels string, value float64, err error) {
	body := line
	if i := strings.IndexByte(body, '{'); i >= 0 {
		j := strings.LastIndexByte(body, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unbalanced labels in %q", line)
		}
		name, labels = body[:i], body[i+1:j]
		body = name + body[j+1:]
		if labels != "" {
			for _, pair := range splitLabels(labels) {
				k, v, ok := strings.Cut(pair, "=")
				if !ok || !promName(k) || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
					return "", "", 0, fmt.Errorf("bad label %q in %q", pair, line)
				}
			}
		}
	}
	fields := strings.Fields(body)
	if len(fields) != 2 && len(fields) != 3 { // optional timestamp
		return "", "", 0, fmt.Errorf("malformed sample %q", line)
	}
	name = fields[0]
	if i := strings.IndexByte(name, '{'); i >= 0 {
		name = name[:i]
	}
	if !promName(name) {
		return "", "", 0, fmt.Errorf("bad metric name %q", name)
	}
	value, err = strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("bad value %q", fields[1])
	}
	return name, labels, value, nil
}

// splitLabels splits a label body on commas outside quoted values.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// promLE extracts the le label value from a bucket's label body.
func promLE(labels string) (string, bool) {
	for _, pair := range splitLabels(labels) {
		if k, v, ok := strings.Cut(pair, "="); ok && k == "le" && len(v) >= 2 {
			return v[1 : len(v)-1], true
		}
	}
	return "", false
}
