package obs

import "testing"

// TestFoldTaxonomyPerFaultClass pins the sample taxonomy the chaos suite
// depends on: each fault class the chaos layer injects surfaces at the
// monitor as a specific ErrClass, and each ErrClass folds in exactly one
// way. The load-bearing rows are the transport failures (a mid-stream
// upstream reset or a truncated body is a ClassFailed *sample* — the
// relay bug fixed alongside this test used to fold it as OK) and the
// cancellations (a client hanging up is ClassCanceled and must stay a
// *non*-sample: reaped losing probes would otherwise poison every
// healthy path's score).
func TestFoldTaxonomyPerFaultClass(t *testing.T) {
	cases := []struct {
		name  string
		fault string // the chaos fault class that produces this outcome
		class ErrClass
		retry bool
		// expected per-window counters after one fold
		ok, fail, retries int64
		sampled           bool // everSample: did the fold count at all?
	}{
		{name: "clean transfer", fault: "none",
			class: ClassOK, ok: 1, sampled: true},
		{name: "mid-stream reset", fault: "reset",
			class: ClassFailed, fail: 1, sampled: true},
		{name: "truncated body (upstream FIN)", fault: "close",
			class: ClassFailed, fail: 1, sampled: true},
		{name: "slow-loris stall past deadline", fault: "stall",
			class: ClassTimeout, fail: 1, sampled: true},
		{name: "partitioned dial", fault: "partition",
			class: ClassFailed, fail: 1, sampled: true},
		{name: "corrupted range (verify failure)", fault: "corrupt",
			class: ClassFailed, fail: 1, sampled: true},
		{name: "origin status error", fault: "none",
			class: ClassStatus, fail: 1, sampled: true},
		{name: "client cancellation", fault: "none",
			class: ClassCanceled, sampled: false},
		{name: "transport retry", fault: "flap",
			class: ClassFailed, retry: true, retries: 1, sampled: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := NewHealthMonitor(HealthConfig{})
			m.fold("path", 1.0, tc.class, 0.1, 4096, tc.retry)
			ph, have := m.PathHealth("path")
			if !have {
				t.Fatal("path never materialized")
			}
			if ph.Ok != tc.ok || ph.Failed != tc.fail || ph.Retries != tc.retries {
				t.Fatalf("fault %s (%v): folded ok=%d fail=%d retries=%d, want %d/%d/%d",
					tc.fault, tc.class, ph.Ok, ph.Failed, ph.Retries, tc.ok, tc.fail, tc.retries)
			}
			// A non-sample must leave the path in the untouched Unknown
			// state with a neutral score, exactly as if nothing happened.
			if !tc.sampled {
				if ph.State != HealthUnknown {
					t.Fatalf("non-sample moved state to %v", ph.State)
				}
				if ph.Ok+ph.Failed+ph.Retries != 0 {
					t.Fatalf("non-sample left counters behind: %+v", ph)
				}
			}
		})
	}
}

// TestFoldTaxonomySequence drives a realistic chaos episode through one
// monitor — healthy traffic, then a burst of mid-stream resets with a
// client cancellation mixed in — and checks the cancellation changed
// nothing while the resets alone drove the verdict.
func TestFoldTaxonomySequence(t *testing.T) {
	m := NewHealthMonitor(HealthConfig{})
	for i := 0; i < 20; i++ {
		m.fold("p", float64(i), ClassOK, 0.05, 64<<10, false)
	}
	if st := m.State("p"); st != HealthHealthy {
		t.Fatalf("state after clean traffic = %v, want healthy", st)
	}
	before, _ := m.PathHealth("p")

	// A cancellation advances the monitor's clock (freshness may decay a
	// hair) but must not register as a sample: the window counters and
	// the verdict stay put.
	m.fold("p", 20.1, ClassCanceled, 0, 0, false)
	after, _ := m.PathHealth("p")
	if after.Ok != before.Ok || after.Failed != before.Failed || after.State != before.State {
		t.Fatalf("cancellation was sampled: before %+v after %+v", before, after)
	}

	for i := 0; i < 30; i++ {
		m.fold("p", 21+float64(i), ClassFailed, 0, 0, false)
	}
	if st := m.State("p"); st == HealthHealthy {
		t.Fatal("reset burst left the path healthy")
	}
	ph, _ := m.PathHealth("p")
	if ph.Failed < 30 {
		t.Fatalf("resets folded = %d, want all 30", ph.Failed)
	}
}
