package obs

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/stats"
)

func TestStripedCountersConcurrentExact(t *testing.T) {
	s := newStripedCounters()
	const goroutines, perG = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				s.add(cBytesStreamed, 1)
				s.add(cRetries, 2)
			}
		}()
	}
	wg.Wait()
	if got := s.load(cBytesStreamed); got != goroutines*perG {
		t.Fatalf("bytesStreamed folded to %d, want %d", got, goroutines*perG)
	}
	if got := s.load(cRetries); got != 2*goroutines*perG {
		t.Fatalf("retries folded to %d, want %d", got, 2*goroutines*perG)
	}
	if got := s.load(cAborts); got != 0 {
		t.Fatalf("untouched counter folded to %d, want 0", got)
	}
}

func TestStripedHistogramConcurrentExactTotalsAndSum(t *testing.T) {
	h := newStripedHistogram(0, 10, 100)
	// Quarter-integer values are exact in binary floating point, so the
	// folded sum must match the arithmetic sum exactly, regardless of
	// which stripe each observation landed on.
	const goroutines, perG = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.observe(float64(i%16)*0.25, TraceID{})
			}
		}(g)
	}
	wg.Wait()
	snap := h.snapshot()
	if snap.Total != goroutines*perG {
		t.Fatalf("total %d, want %d", snap.Total, goroutines*perG)
	}
	perGoroutineSum := 0.0
	for i := 0; i < perG; i++ {
		perGoroutineSum += float64(i%16) * 0.25
	}
	if want := perGoroutineSum * goroutines; snap.Sum != want {
		t.Fatalf("sum %v, want exactly %v", snap.Sum, want)
	}
}

func TestStripedHistogramExemplarLatestWinsAcrossStripes(t *testing.T) {
	// Hand-built two-stripe histogram: stripe merging must pick the
	// freshest exemplar per bin and skip zero-trace slots, independent of
	// GOMAXPROCS on the test machine.
	h := &stripedHistogram{lo: 0, hi: 1, bins: 10, picker: newStripePicker(2),
		stripes: []*histStripe{
			{h: stats.NewHistogram(0, 1, 10)},
			{h: stats.NewHistogram(0, 1, 10)},
		}}
	older, newer, lone := NewTraceID(), NewTraceID(), NewTraceID()
	h.stripes[0].ex = make([]Exemplar, 10)
	h.stripes[1].ex = make([]Exemplar, 10)
	h.stripes[0].ex[3] = Exemplar{Bin: 3, Value: 0.31, Trace: older, Time: 100}
	h.stripes[1].ex[3] = Exemplar{Bin: 3, Value: 0.39, Trace: newer, Time: 200}
	h.stripes[1].ex[7] = Exemplar{Bin: 7, Value: 0.75, Trace: lone, Time: 50}
	snap := h.snapshot()
	if len(snap.Exemplars) != 2 {
		t.Fatalf("exemplars %v, want exactly bins 3 and 7", snap.Exemplars)
	}
	for _, e := range snap.Exemplars {
		switch e.Bin {
		case 3:
			if e.Trace != newer {
				t.Fatalf("bin 3 exemplar trace %s, want the fresher %s", e.Trace, newer)
			}
		case 7:
			if e.Trace != lone {
				t.Fatalf("bin 7 exemplar trace %s, want %s", e.Trace, lone)
			}
		default:
			t.Fatalf("unexpected exemplar bin %d", e.Bin)
		}
	}
}

func TestStripedHistogramExemplarOverwriteSameBin(t *testing.T) {
	h := newStripedHistogram(0, 1, 10)
	first, second := NewTraceID(), NewTraceID()
	h.observe(0.35, first)
	time.Sleep(time.Millisecond) // UnixNano strictly advances
	h.observe(0.32, second)
	snap := h.snapshot()
	if len(snap.Exemplars) != 1 || snap.Exemplars[0].Trace != second {
		t.Fatalf("exemplars %v, want one entry tracing %s", snap.Exemplars, second)
	}
	if snap.Exemplars[0].Value != 0.32 {
		t.Fatalf("exemplar value %v, want the overwriting 0.32", snap.Exemplars[0].Value)
	}
}

func TestStripedHistogramBinOf(t *testing.T) {
	h := newStripedHistogram(0, 1, 10)
	cases := []struct {
		v    float64
		want int
	}{
		{-0.01, -1}, // underflow: no exemplar slot
		{0, 0},
		{0.05, 0},
		{0.1, 1},
		{0.95, 9},
		{0.999999, 9},
		{1.0, -1}, // hi is exclusive
		{2.5, -1},
	}
	for _, c := range cases {
		if got := h.binOf(c.v); got != c.want {
			t.Fatalf("binOf(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestStripedHistogramZeroTraceRecordsNoExemplar(t *testing.T) {
	h := newStripedHistogram(0, 1, 10)
	h.observe(0.5, TraceID{})
	snap := h.snapshot()
	if len(snap.Exemplars) != 0 {
		t.Fatalf("zero-trace observation produced exemplars: %v", snap.Exemplars)
	}
	if snap.Total != 1 {
		t.Fatalf("total %d, want 1", snap.Total)
	}
}

func TestStripePickerSpreadsAndRecycles(t *testing.T) {
	p := newStripePicker(4)
	seen := make(map[int]bool)
	var held []int
	for i := 0; i < 4; i++ {
		idx := p.acquire()
		if idx < 0 || idx >= 4 {
			t.Fatalf("stripe index %d out of range", idx)
		}
		seen[idx] = true
		held = append(held, idx)
	}
	// Four acquires with nothing released draw from the pool's New
	// round-robin, covering all stripes.
	if len(seen) != 4 {
		t.Fatalf("fresh picker handed out %d distinct stripes, want 4", len(seen))
	}
	for _, idx := range held {
		p.release(idx)
	}
	if idx := p.acquire(); idx < 0 || idx >= 4 {
		t.Fatalf("recycled stripe index %d out of range", idx)
	}
}

// BenchmarkMetricsContended pins the tentpole contention claim: the
// per-P striped cells against the single shared atomic they replaced,
// under RunParallel. On multi-core machines the striped variant must
// scale (TestStripedSpeedupUnderContention asserts the ratio); the
// benchmark itself also documents the single-threaded cost.
func BenchmarkMetricsContended(b *testing.B) {
	b.Run("striped", func(b *testing.B) {
		s := newStripedCounters()
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				s.add(cBytesStreamed, 1)
			}
		})
		if got := s.load(cBytesStreamed); got != int64(b.N) {
			b.Fatalf("folded %d, want %d", got, b.N)
		}
	})
	b.Run("single", func(b *testing.B) {
		var c atomic.Int64
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Add(1)
			}
		})
		if c.Load() != int64(b.N) {
			b.Fatalf("counted %d, want %d", c.Load(), b.N)
		}
	})
}

// TestStripedSpeedupUnderContention asserts the striped counters beat a
// single shared cell by >=4x under parallel load. Cache-line
// ping-ponging needs real cores to show up, so the test only runs at
// GOMAXPROCS >= 4.
func TestStripedSpeedupUnderContention(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("GOMAXPROCS %d < 4: contention does not manifest", runtime.GOMAXPROCS(0))
	}
	if testing.Short() {
		t.Skip("measured benchmark")
	}
	striped := testing.Benchmark(func(b *testing.B) {
		s := newStripedCounters()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				s.add(cBytesStreamed, 1)
			}
		})
	})
	single := testing.Benchmark(func(b *testing.B) {
		var c atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Add(1)
			}
		})
	})
	ratio := float64(single.NsPerOp()) / float64(striped.NsPerOp())
	t.Logf("striped %d ns/op, single %d ns/op, speedup %.1fx",
		striped.NsPerOp(), single.NsPerOp(), ratio)
	if ratio < 4 {
		t.Fatalf("striped counters only %.1fx faster than a single cell under contention, want >= 4x", ratio)
	}
}

// BenchmarkExemplarRender prices an OpenMetrics scrape of a histogram
// with every coarsened bucket carrying an exemplar — the worst-case
// /metrics render the negotiation can produce.
func BenchmarkExemplarRender(b *testing.B) {
	var rec LatencyRecorder
	for i := 0; i < 2000; i++ {
		rec.ObserveTrace(time.Duration(i%2000)*10*time.Millisecond, NewTraceID())
	}
	snap := rec.Snapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := NewOpenMetricsProm()
		p.Histogram("bench_latency_seconds", "Bench.", snap)
		if len(p.Bytes()) == 0 {
			b.Fatal("empty render")
		}
	}
}

func TestStripeCountClamped(t *testing.T) {
	n := stripeCount()
	if n < 1 || n > maxStripes {
		t.Fatalf("stripeCount %d outside [1, %d]", n, maxStripes)
	}
	if want := runtime.GOMAXPROCS(0); want <= maxStripes && n != want {
		t.Fatalf("stripeCount %d, want GOMAXPROCS %d", n, want)
	}
}

func TestMetricsStripedCountersFoldInSnapshot(t *testing.T) {
	m := NewMetrics()
	const n = 1000
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				m.TransferProgress(Progress{Chunk: 3})
			}
		}()
	}
	wg.Wait()
	if got := m.Snapshot().BytesStreamed; got != 4*3*n {
		t.Fatalf("BytesStreamed %d, want %d", got, 4*3*n)
	}
}

func TestExemplarNear(t *testing.T) {
	var rec LatencyRecorder
	slowTrace := NewTraceID()
	for i := 0; i < 99; i++ {
		rec.Observe(50 * time.Millisecond)
	}
	rec.ObserveTrace(10*time.Second, slowTrace)
	snap := rec.Snapshot()
	e, ok := snap.ExemplarNear(0.999)
	if !ok || e.Trace != slowTrace {
		t.Fatalf("ExemplarNear(0.999) = %+v ok=%v, want the slow outlier trace %s", e, ok, slowTrace)
	}
}

func ExampleHistogramSnapshot_ExemplarNear() {
	var rec LatencyRecorder
	rec.Observe(10 * time.Millisecond)
	snap := rec.Snapshot()
	_, ok := snap.ExemplarNear(0.99)
	fmt.Println(ok)
	// Output: false
}
