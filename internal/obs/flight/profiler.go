// The continuous profiler: periodic CPU/heap/goroutine captures into a
// byte-bounded on-disk ring, so the profile covering an anomaly already
// exists when the trigger engine asks for it — profiling that starts
// after the page is too late for the cause.
//
// While any profiler is running, the fetch/forward hot paths run under
// pprof labels (DoLabeled), so the captured CPU samples attribute to
// the operation that burned them. The label gate is one atomic load
// when no profiler runs, keeping the unprofiled hot path untouched.

package flight

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// ProfilerConfig parameterizes a Profiler. The zero value (plus a Dir)
// gets defaults suitable for an always-on daemon.
type ProfilerConfig struct {
	// Dir is where captures land. Required; created if missing.
	Dir string
	// Every is the capture cadence (default 30s).
	Every time.Duration
	// CPUSeconds is each cycle's CPU-profile window (default 2s, capped
	// below Every so cycles never overlap).
	CPUSeconds float64
	// MaxBytes bounds the on-disk ring: after each cycle the oldest
	// captures are deleted until the directory's captures fit (default
	// 8 MiB).
	MaxBytes int64
}

func (c ProfilerConfig) withDefaults() ProfilerConfig {
	if c.Every <= 0 {
		c.Every = 30 * time.Second
	}
	if c.CPUSeconds <= 0 {
		c.CPUSeconds = 2
	}
	if max := c.Every.Seconds() / 2; c.CPUSeconds > max {
		c.CPUSeconds = max
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = 8 << 20
	}
	return c
}

// profCapture is one retained capture file.
type profCapture struct {
	path string
	size int64
}

// Profiler captures profiles on a cadence. Start/Stop bracket the
// background loop; CycleNow runs one capture synchronously (the trigger
// engine uses it to guarantee a fresh capture exists in a bundle).
type Profiler struct {
	cfg ProfilerConfig

	mu       sync.Mutex
	files    []profCapture // oldest first
	seq      uint64
	cycles   atomic.Uint64
	failures atomic.Uint64

	startStop sync.Mutex
	stop      chan struct{}
	done      chan struct{}
}

// NewProfiler returns a profiler writing into cfg.Dir (created if
// missing). The background loop is not started; call Start.
func NewProfiler(cfg ProfilerConfig) (*Profiler, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("flight: profiler needs a directory")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("flight: profiler dir: %w", err)
	}
	return &Profiler{cfg: cfg}, nil
}

// Start launches the capture loop and raises the hot-path label gate.
// No-op if already running.
func (p *Profiler) Start() {
	p.startStop.Lock()
	defer p.startStop.Unlock()
	if p.stop != nil {
		return
	}
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	labelsActive.Add(1)
	go p.loop(p.stop, p.done)
}

// Stop halts the capture loop (waiting out an in-progress cycle) and
// lowers the label gate. No-op if not running.
func (p *Profiler) Stop() {
	p.startStop.Lock()
	defer p.startStop.Unlock()
	if p.stop == nil {
		return
	}
	close(p.stop)
	<-p.done
	p.stop, p.done = nil, nil
	labelsActive.Add(-1)
}

func (p *Profiler) loop(stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(p.cfg.Every)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			p.cycle(stop)
		}
	}
}

// CycleNow runs one capture cycle synchronously: a CPU window, a heap
// snapshot, and a goroutine profile, then prunes the ring.
func (p *Profiler) CycleNow() error {
	return p.cycle(nil)
}

func (p *Profiler) cycle(stop chan struct{}) error {
	p.mu.Lock()
	p.seq++
	seq := p.seq
	p.mu.Unlock()

	var firstErr error
	record := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}

	// CPU first: the window is the cycle's long pole. Another profiler
	// (or a test harness) may own the process's single CPU profile slot;
	// that skips the CPU capture, not the cycle.
	cpuPath := filepath.Join(p.cfg.Dir, fmt.Sprintf("cpu-%06d.pprof", seq))
	if f, err := os.Create(cpuPath); err != nil {
		record(err)
	} else if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		os.Remove(cpuPath)
	} else {
		window := time.Duration(p.cfg.CPUSeconds * float64(time.Second))
		timer := time.NewTimer(window)
		select {
		case <-timer.C:
		case <-stop:
			timer.Stop()
		}
		pprof.StopCPUProfile()
		record(f.Close())
		p.track(cpuPath)
	}

	for _, prof := range []string{"heap", "goroutine"} {
		path := filepath.Join(p.cfg.Dir, fmt.Sprintf("%s-%06d.pprof", prof, seq))
		f, err := os.Create(path)
		if err != nil {
			record(err)
			continue
		}
		if err := pprof.Lookup(prof).WriteTo(f, 0); err != nil {
			record(err)
		}
		record(f.Close())
		p.track(path)
	}

	p.prune()
	p.cycles.Add(1)
	if firstErr != nil {
		p.failures.Add(1)
	}
	return firstErr
}

// track registers a finished capture file in the ring.
func (p *Profiler) track(path string) {
	info, err := os.Stat(path)
	if err != nil {
		return
	}
	p.mu.Lock()
	p.files = append(p.files, profCapture{path: path, size: info.Size()})
	p.mu.Unlock()
}

// prune deletes oldest captures until the ring fits MaxBytes.
func (p *Profiler) prune() {
	p.mu.Lock()
	defer p.mu.Unlock()
	var total int64
	for _, f := range p.files {
		total += f.size
	}
	for len(p.files) > 0 && total > p.cfg.MaxBytes {
		victim := p.files[0]
		p.files = p.files[1:]
		total -= victim.size
		os.Remove(victim.path)
	}
}

// Files returns the retained capture paths, newest first. Nil-safe.
func (p *Profiler) Files() []string {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.files))
	for i := len(p.files) - 1; i >= 0; i-- {
		out = append(out, p.files[i].path)
	}
	return out
}

// Cycles returns how many capture cycles have completed. Nil-safe.
func (p *Profiler) Cycles() uint64 {
	if p == nil {
		return 0
	}
	return p.cycles.Load()
}

// Failures returns how many cycles hit a capture error. Nil-safe.
func (p *Profiler) Failures() uint64 {
	if p == nil {
		return 0
	}
	return p.failures.Load()
}

// DiskBytes returns the ring's current on-disk footprint. Nil-safe.
func (p *Profiler) DiskBytes() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var total int64
	for _, f := range p.files {
		total += f.size
	}
	return total
}

// --- Hot-path labels --------------------------------------------------

// labelsActive counts running profilers; the hot-path label sites check
// it with one atomic load before paying for pprof label plumbing.
var labelsActive atomic.Int32

// DoLabeled runs fn under a pprof "op" label when a profiler is
// capturing, and directly (one atomic load, zero allocations) when not.
// The fetch and forward hot paths wrap themselves in this, so CPU
// samples in the captured profiles attribute to the operation.
func DoLabeled(ctx context.Context, op string, fn func(context.Context)) {
	if labelsActive.Load() == 0 {
		fn(ctx)
		return
	}
	pprof.Do(ctx, pprof.Labels("op", op), fn)
}

// GoroutineDump renders the current goroutine stacks in the
// debug-text form (pprof "goroutine" profile, debug=2): what every
// goroutine is blocked on, with stack traces — the /debug/stack page
// and the bundle's wedge evidence.
func GoroutineDump() []byte {
	var buf bytes.Buffer
	if err := pprof.Lookup("goroutine").WriteTo(&buf, 2); err != nil {
		return []byte("goroutine dump failed: " + err.Error() + "\n")
	}
	return buf.Bytes()
}
