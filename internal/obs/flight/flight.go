// Package flight is the diagnostics half of the observability plane:
// where internal/obs answers "how is the system doing" in aggregate
// (counters, health scores, burn rates), flight answers "what happened
// to THIS transfer" — and keeps enough recent context around that the
// answer survives the anomaly that raised the question.
//
// Four pieces:
//
//   - the wide-event log (Recorder): one bounded-ring canonical record
//     per finished transfer/forward — path, phase durations, bytes,
//     cache disposition, retries, outcome class, trace ID — served
//     filterable at /debug/requests and optionally archived as JSONL;
//   - the in-flight inspector (the Recorder's active table): what every
//     live transfer is doing right now — current phase, bytes so far,
//     age — at /debug/active, so a wedged transfer is visible while it
//     hangs instead of after the stall guard fires;
//   - the continuous profiler (Profiler): periodic CPU/heap/goroutine
//     captures into a byte-bounded on-disk ring, with pprof labels on
//     the fetch/forward hot paths while a profiler is running;
//   - the trigger engine (Engine): watches SLO fast-burn crossings and
//     health →down transitions and, rate-limited per path, snapshots a
//     debug bundle of all of the above.
//
// Everything is nil-safe in the style of obs.ActiveSpan: a nil
// *Recorder starts nil *Transfer handles, and every method on both
// no-ops, so the uninstrumented hot path pays one pointer comparison
// per site and allocates nothing.
package flight

import (
	"encoding/json"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Phase is one named slice of a transfer's lifetime, measured between
// consecutive Transfer.Phase marks (the same boundaries the span
// children use: dial, request-write, ttfb, stream, ...).
type Phase struct {
	Name string  `json:"name"`
	Secs float64 `json:"secs"`
}

// Event is one wide event: the single canonical record of one finished
// transfer (client side) or forward (relay side). One row holds every
// dimension an investigation pivots on, so "show me the slow misses on
// path X" is one filter pass instead of a join across subsystems.
type Event struct {
	// Seq is the recorder-assigned sequence number (1-based, monotonic).
	Seq uint64 `json:"seq"`
	// Wall is the finish time, Unix nanoseconds.
	Wall int64 `json:"wall_ns"`
	// Service is the recording process role: "client", "relay".
	Service string `json:"svc"`
	// Path is the outcome's path key — obs.PathID.Label() on the client,
	// the upstream address on the relay — matching the health monitor's
	// fold key so wide events, health history, and triggers align.
	Path string `json:"path"`
	// Object is the object name ("" when the request never named one).
	Object string `json:"object,omitempty"`
	// Trace is the transfer's trace ID (32 hex digits) when tracing was
	// on, linking this row to its stitched span timeline.
	Trace string `json:"trace,omitempty"`
	// Class is the outcome's obs.ErrClass.String(); Err the failure
	// detail.
	Class string `json:"class"`
	Err   string `json:"err,omitempty"`
	// Duration is start-to-finish seconds; Bytes the payload bytes
	// delivered.
	Duration float64 `json:"dur_s"`
	Bytes    int64   `json:"bytes"`
	// Cache is the cache disposition: "hit", "shared", "miss", or ""
	// when no cache was consulted.
	Cache string `json:"cache,omitempty"`
	// Retries counts cold re-attempts within this transfer.
	Retries int `json:"retries,omitempty"`
	// Warm marks a transfer that reused a pooled connection.
	Warm bool `json:"warm,omitempty"`
	// Phases are the measured phase durations, in transition order.
	Phases []Phase `json:"phases,omitempty"`
}

// Config parameterizes a Recorder. The zero value gets defaults.
type Config struct {
	// Ring is how many finished events are retained (default 512).
	Ring int
	// Archive, when set, receives every finished event as one JSON line.
	// Writes happen on a dedicated goroutine behind a bounded queue —
	// a slow or failing sink drops events (counted) rather than ever
	// blocking the transfer path.
	Archive interface{ Write(p []byte) (int, error) }
	// ArchiveQueue bounds the pending archive writes (default 256).
	ArchiveQueue int
}

func (c Config) withDefaults() Config {
	if c.Ring <= 0 {
		c.Ring = 512
	}
	if c.ArchiveQueue <= 0 {
		c.ArchiveQueue = 256
	}
	return c
}

// Recorder is the wide-event log plus the in-flight table. Safe for
// concurrent use; a nil *Recorder disables every site.
type Recorder struct {
	cfg Config

	mu     sync.Mutex
	ring   []Event
	next   int
	full   bool
	seq    uint64
	active map[uint64]*Transfer

	archCh      chan []byte
	archDropped atomic.Uint64
	archClose   sync.Once
	archDone    chan struct{}
}

// NewRecorder returns a recorder with cfg's gaps filled by defaults.
func NewRecorder(cfg Config) *Recorder {
	cfg = cfg.withDefaults()
	r := &Recorder{
		cfg:    cfg,
		ring:   make([]Event, cfg.Ring),
		active: make(map[uint64]*Transfer),
	}
	if cfg.Archive != nil {
		r.archCh = make(chan []byte, cfg.ArchiveQueue)
		r.archDone = make(chan struct{})
		go r.archiveLoop()
	}
	return r
}

// archiveLoop drains the archive queue onto the sink. Write errors are
// counted as drops; the loop never stops mid-stream on one bad write.
func (r *Recorder) archiveLoop() {
	defer close(r.archDone)
	for line := range r.archCh {
		if _, err := r.cfg.Archive.Write(line); err != nil {
			r.archDropped.Add(1)
		}
	}
}

// CloseArchive flushes and stops the archive goroutine (no-op without
// an archive, or on a nil recorder). Call on shutdown before closing
// the underlying sink.
func (r *Recorder) CloseArchive() {
	if r == nil || r.archCh == nil {
		return
	}
	r.archClose.Do(func() { close(r.archCh) })
	<-r.archDone
}

// Start opens an in-flight transfer handle. A nil recorder returns a
// nil handle, on which every method no-ops.
func (r *Recorder) Start(service, path, object string) *Transfer {
	if r == nil {
		return nil
	}
	t := &Transfer{
		rec:     r,
		service: service,
		path:    path,
		object:  object,
		begin:   time.Now(),
	}
	t.phaseAt = t.begin
	r.mu.Lock()
	r.seq++
	t.id = r.seq
	r.active[t.id] = t
	r.mu.Unlock()
	return t
}

// finish moves a transfer's event into the ring and hands it to the
// archive queue (non-blocking: a full queue drops and counts).
func (r *Recorder) finish(id uint64, ev Event) {
	r.mu.Lock()
	delete(r.active, id)
	r.ring[r.next] = ev
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
	if r.archCh != nil {
		line, err := json.Marshal(ev)
		if err != nil {
			r.archDropped.Add(1)
			return
		}
		select {
		case r.archCh <- append(line, '\n'):
		default:
			r.archDropped.Add(1)
		}
	}
}

// Seen returns how many transfers the recorder has ever started.
// Nil-safe.
func (r *Recorder) Seen() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Dropped returns how many finished events newer ones have overwritten.
// Nil-safe.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return 0
	}
	finished := r.seq - uint64(len(r.active))
	if finished < uint64(len(r.ring)) {
		return 0
	}
	return finished - uint64(len(r.ring))
}

// ArchiveDropped returns how many events the archive path dropped
// (queue full, marshal or write failure). Nil-safe.
func (r *Recorder) ArchiveDropped() uint64 {
	if r == nil {
		return 0
	}
	return r.archDropped.Load()
}

// Filter selects wide events; zero-valued fields match everything.
type Filter struct {
	// Path, Class, Object, and Trace match those event fields exactly.
	Path   string
	Class  string
	Object string
	Trace  string
	// N bounds the result to the newest N matches (0 = all retained).
	N int
}

// ParseQuery builds a Filter from a request target's query string
// ("/debug/requests?path=direct&class=failed&n=20"). Unknown keys are
// ignored; a missing or malformed query yields the match-all filter.
func ParseQuery(target string) Filter {
	var f Filter
	_, query, ok := strings.Cut(target, "?")
	if !ok {
		return f
	}
	for _, kv := range strings.Split(query, "&") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			continue
		}
		switch k {
		case "path":
			f.Path = v
		case "class":
			f.Class = v
		case "object":
			f.Object = v
		case "trace":
			f.Trace = v
		case "n", "name":
			// "name" doubles for /debug/bundle?name=; harmless here.
			if n, err := strconv.Atoi(v); err == nil {
				f.N = n
			}
		}
	}
	return f
}

func (f Filter) match(ev Event) bool {
	if f.Path != "" && ev.Path != f.Path {
		return false
	}
	if f.Class != "" && ev.Class != f.Class {
		return false
	}
	if f.Object != "" && ev.Object != f.Object {
		return false
	}
	if f.Trace != "" && ev.Trace != f.Trace {
		return false
	}
	return true
}

// Events returns the retained wide events matching f, newest first.
// Nil-safe (nil recorder returns nil).
func (r *Recorder) Events(f Filter) []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.ring)
	}
	out := make([]Event, 0, n)
	// Walk newest to oldest: the slot before next is the newest event.
	for i := 0; i < n; i++ {
		idx := r.next - 1 - i
		if idx < 0 {
			idx += len(r.ring)
		}
		ev := r.ring[idx]
		if ev.Seq == 0 || !f.match(ev) {
			continue
		}
		out = append(out, ev)
		if f.N > 0 && len(out) >= f.N {
			break
		}
	}
	return out
}

// ActiveTransfer is one in-flight transfer's live view, the
// /debug/active row.
type ActiveTransfer struct {
	ID      uint64  `json:"id"`
	Service string  `json:"svc"`
	Path    string  `json:"path"`
	Object  string  `json:"object,omitempty"`
	Trace   string  `json:"trace,omitempty"`
	Phase   string  `json:"phase"`
	Bytes   int64   `json:"bytes"`
	AgeSecs float64 `json:"age_s"`
	Retries int     `json:"retries,omitempty"`
	Warm    bool    `json:"warm,omitempty"`
}

// Active snapshots the in-flight table, oldest transfer first (the
// likeliest wedge at the top). Nil-safe.
func (r *Recorder) Active() []ActiveTransfer {
	if r == nil {
		return nil
	}
	now := time.Now()
	r.mu.Lock()
	live := make([]*Transfer, 0, len(r.active))
	for _, t := range r.active {
		live = append(live, t)
	}
	r.mu.Unlock()
	out := make([]ActiveTransfer, 0, len(live))
	for _, t := range live {
		out = append(out, t.snapshot(now))
	}
	// Oldest first by ID (IDs are start-ordered).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].ID < out[j-1].ID; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Transfer is one in-flight transfer's handle: the transfer path marks
// phases and progress on it, and Finish folds it into the wide-event
// ring. Phase/trace/cache/finish calls come from the one goroutine that
// owns the transfer (like obs.ActiveSpan); bytes and the snapshot
// reader may race them, so everything the snapshot reads is behind the
// handle's mutex or atomic. A nil *Transfer no-ops everywhere.
type Transfer struct {
	rec     *Recorder
	id      uint64
	service string
	begin   time.Time

	bytes atomic.Int64

	mu      sync.Mutex
	path    string
	object  string
	trace   string
	phase   string
	phaseAt time.Time
	phases  []Phase
	cache   string
	retries int
	warm    bool
	done    bool
}

func (t *Transfer) snapshot(now time.Time) ActiveTransfer {
	t.mu.Lock()
	defer t.mu.Unlock()
	return ActiveTransfer{
		ID: t.id, Service: t.service, Path: t.path, Object: t.object,
		Trace: t.trace, Phase: t.phase, Bytes: t.bytes.Load(),
		AgeSecs: now.Sub(t.begin).Seconds(),
		Retries: t.retries, Warm: t.warm,
	}
}

// Phase marks a phase transition, closing the previous phase's
// duration. Nil-safe.
func (t *Transfer) Phase(name string) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	t.closePhase(now)
	t.phase = name
	t.phaseAt = now
	t.mu.Unlock()
}

// closePhase folds the elapsed current phase into the phase list.
// Caller holds t.mu.
func (t *Transfer) closePhase(now time.Time) {
	if t.phase == "" {
		return
	}
	secs := now.Sub(t.phaseAt).Seconds()
	// Retried phases repeat (dial, ttfb, ...): accumulate into the last
	// entry of the same name rather than growing without bound.
	if n := len(t.phases); n > 0 && t.phases[n-1].Name == t.phase {
		t.phases[n-1].Secs += secs
		return
	}
	t.phases = append(t.phases, Phase{Name: t.phase, Secs: secs})
}

// StoreBytes records the payload bytes delivered so far. Nil-safe.
func (t *Transfer) StoreBytes(n int64) {
	if t == nil {
		return
	}
	t.bytes.Store(n)
}

// AddBytes adds to the payload bytes delivered so far. Nil-safe.
func (t *Transfer) AddBytes(n int64) {
	if t == nil {
		return
	}
	t.bytes.Add(n)
}

// SetTrace links the transfer to its trace ID (hex form). Nil-safe.
func (t *Transfer) SetTrace(trace string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.trace = trace
	t.mu.Unlock()
}

// SetCache records the cache disposition ("hit", "shared", "miss").
// Nil-safe.
func (t *Transfer) SetCache(state string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.cache = state
	t.mu.Unlock()
}

// Retry counts one cold re-attempt. Nil-safe.
func (t *Transfer) Retry() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.retries++
	t.mu.Unlock()
}

// SetWarm marks the transfer as a warm continuation. Nil-safe.
func (t *Transfer) SetWarm() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.warm = true
	t.mu.Unlock()
}

// Finish closes the transfer with its outcome and folds the wide event
// into the recorder. Only the first Finish takes effect. Nil-safe.
func (t *Transfer) Finish(class, errText string) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return
	}
	t.done = true
	t.closePhase(now)
	ev := Event{
		Seq:      t.id,
		Wall:     now.UnixNano(),
		Service:  t.service,
		Path:     t.path,
		Object:   t.object,
		Trace:    t.trace,
		Class:    class,
		Err:      errText,
		Duration: now.Sub(t.begin).Seconds(),
		Bytes:    t.bytes.Load(),
		Cache:    t.cache,
		Retries:  t.retries,
		Warm:     t.warm,
		Phases:   t.phases,
	}
	t.mu.Unlock()
	t.rec.finish(t.id, ev)
}
