package flight

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestProfilerCycleProducesCaptures(t *testing.T) {
	dir := t.TempDir()
	p, err := NewProfiler(ProfilerConfig{Dir: dir, Every: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CycleNow(); err != nil {
		t.Fatalf("CycleNow: %v", err)
	}
	files := p.Files()
	// CPU capture may be skipped when another profiler owns the
	// process's single CPU slot (the -race test harness can); heap and
	// goroutine must always land.
	var heap, goroutine bool
	for _, f := range files {
		base := filepath.Base(f)
		heap = heap || strings.HasPrefix(base, "heap-")
		goroutine = goroutine || strings.HasPrefix(base, "goroutine-")
		if _, err := os.Stat(f); err != nil {
			t.Fatalf("listed capture missing on disk: %v", err)
		}
	}
	if !heap || !goroutine {
		t.Fatalf("cycle captures = %v, want heap and goroutine profiles", files)
	}
	if p.Cycles() != 1 {
		t.Fatalf("Cycles = %d, want 1", p.Cycles())
	}
	if p.DiskBytes() <= 0 {
		t.Fatalf("DiskBytes = %d after a cycle", p.DiskBytes())
	}
}

func TestProfilerPruneRespectsMaxBytes(t *testing.T) {
	dir := t.TempDir()
	// A budget tiny enough that every cycle's captures exceed it: after
	// each prune at most the newest capture survives the budget check.
	p, err := NewProfiler(ProfilerConfig{Dir: dir, Every: 100 * time.Millisecond, MaxBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := p.CycleNow(); err != nil {
			t.Fatalf("CycleNow: %v", err)
		}
	}
	// The ring never retains more than one over-budget capture, and the
	// on-disk directory matches the tracked list.
	if n := len(p.Files()); n > 1 {
		t.Fatalf("prune left %d captures over a 1-byte budget", n)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(p.Files()) {
		t.Fatalf("disk has %d files, ring tracks %d", len(entries), len(p.Files()))
	}
}

func TestProfilerStartStopGate(t *testing.T) {
	dir := t.TempDir()
	p, err := NewProfiler(ProfilerConfig{Dir: dir, Every: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if labelsActive.Load() != 0 {
		t.Fatalf("label gate = %d before Start", labelsActive.Load())
	}
	p.Start()
	p.Start() // idempotent
	if labelsActive.Load() != 1 {
		t.Fatalf("label gate = %d after Start, want 1", labelsActive.Load())
	}
	p.Stop()
	p.Stop() // idempotent
	if labelsActive.Load() != 0 {
		t.Fatalf("label gate = %d after Stop, want 0", labelsActive.Load())
	}
}

func TestProfilerRequiresDir(t *testing.T) {
	if _, err := NewProfiler(ProfilerConfig{}); err == nil {
		t.Fatal("NewProfiler accepted an empty Dir")
	}
}

func TestNilProfilerNoOp(t *testing.T) {
	var p *Profiler
	if p.Files() != nil || p.Cycles() != 0 || p.Failures() != 0 || p.DiskBytes() != 0 {
		t.Fatal("nil profiler reported state")
	}
}

func TestGoroutineDump(t *testing.T) {
	dump := string(GoroutineDump())
	if !strings.Contains(dump, "goroutine") || !strings.Contains(dump, "TestGoroutineDump") {
		t.Fatalf("goroutine dump missing this test's frame:\n%.400s", dump)
	}
}
