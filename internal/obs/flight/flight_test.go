package flight

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// record runs one whole transfer through the recorder with the given
// identity and outcome.
func record(r *Recorder, path, object, class string) {
	t := r.Start("client", path, object)
	t.Phase("dial")
	t.Phase("stream")
	t.StoreBytes(100)
	t.Finish(class, "")
}

func TestRecorderRingRotationAndFilter(t *testing.T) {
	r := NewRecorder(Config{Ring: 4})
	record(r, "direct", "a.bin", "ok")
	record(r, "relay:r1", "a.bin", "ok")
	record(r, "direct", "b.bin", "refused")
	record(r, "relay:r1", "b.bin", "ok")

	evs := r.Events(Filter{})
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	// Newest first: the last finish is the first row.
	if evs[0].Path != "relay:r1" || evs[0].Object != "b.bin" {
		t.Fatalf("newest event = %+v, want the relay:r1/b.bin finish", evs[0])
	}
	if evs[0].Seq <= evs[1].Seq {
		t.Fatalf("events not newest-first: seqs %d, %d", evs[0].Seq, evs[1].Seq)
	}
	if r.Dropped() != 0 {
		t.Fatalf("Dropped = %d before rotation", r.Dropped())
	}

	// Two more finishes rotate the two oldest out of the 4-slot ring.
	record(r, "direct", "c.bin", "ok")
	record(r, "direct", "d.bin", "ok")
	if got := r.Dropped(); got != 2 {
		t.Fatalf("Dropped = %d after rotation, want 2", got)
	}
	for _, ev := range r.Events(Filter{}) {
		if ev.Object == "a.bin" {
			t.Fatalf("rotated-out event still served: %+v", ev)
		}
	}

	// Filters are conjunctive and exact.
	if evs := r.Events(Filter{Path: "direct", Class: "refused"}); len(evs) != 1 || evs[0].Object != "b.bin" {
		t.Fatalf("path+class filter = %+v", evs)
	}
	if evs := r.Events(Filter{Path: "direct", N: 1}); len(evs) != 1 || evs[0].Object != "d.bin" {
		t.Fatalf("N=1 should keep only the newest direct event, got %+v", evs)
	}
	if evs := r.Events(Filter{Object: "nope"}); len(evs) != 0 {
		t.Fatalf("non-matching filter returned %+v", evs)
	}
	if r.Seen() != 6 {
		t.Fatalf("Seen = %d, want 6", r.Seen())
	}
}

func TestRecorderEventFields(t *testing.T) {
	r := NewRecorder(Config{Ring: 8})
	tr := r.Start("relay", "127.0.0.1:9999", "obj.bin")
	tr.SetTrace("deadbeef")
	tr.SetCache("miss")
	tr.SetWarm()
	tr.Retry()
	tr.Phase("dial")
	tr.Phase("ttfb")
	tr.Phase("dial") // a retry revisits an earlier phase name
	tr.Phase("stream")
	tr.AddBytes(40)
	tr.AddBytes(2)
	tr.Finish("reset", "connection reset")
	tr.Finish("ok", "") // only the first Finish counts

	evs := r.Events(Filter{Trace: "deadbeef"})
	if len(evs) != 1 {
		t.Fatalf("trace filter found %d events", len(evs))
	}
	ev := evs[0]
	if ev.Service != "relay" || ev.Class != "reset" || ev.Err != "connection reset" ||
		ev.Cache != "miss" || !ev.Warm || ev.Retries != 1 || ev.Bytes != 42 {
		t.Fatalf("event fields wrong: %+v", ev)
	}
	// Only consecutive same-named phases accumulate, so transition
	// order survives: dial, ttfb, dial (the retry), stream.
	var names []string
	for _, p := range ev.Phases {
		names = append(names, p.Name)
	}
	if strings.Join(names, ",") != "dial,ttfb,dial,stream" {
		t.Fatalf("phases = %v", names)
	}
}

func TestActiveTable(t *testing.T) {
	r := NewRecorder(Config{})
	old := r.Start("client", "direct", "a.bin")
	young := r.Start("client", "relay:r1", "b.bin")
	young.Phase("ttfb")
	young.StoreBytes(7)

	act := r.Active()
	if len(act) != 2 {
		t.Fatalf("Active = %d rows, want 2", len(act))
	}
	if act[0].ID != 1 || act[1].ID != 2 {
		t.Fatalf("active rows not oldest-first: %+v", act)
	}
	if act[1].Phase != "ttfb" || act[1].Bytes != 7 || act[1].AgeSecs < 0 {
		t.Fatalf("live row wrong: %+v", act[1])
	}

	old.Finish("ok", "")
	young.Finish("ok", "")
	if act := r.Active(); len(act) != 0 {
		t.Fatalf("Active after finish = %+v", act)
	}
}

func TestParseQuery(t *testing.T) {
	f := ParseQuery("/debug/requests?path=direct&class=failed&object=a.bin&trace=ff&n=20")
	want := Filter{Path: "direct", Class: "failed", Object: "a.bin", Trace: "ff", N: 20}
	if f != want {
		t.Fatalf("ParseQuery = %+v, want %+v", f, want)
	}
	if f := ParseQuery("/debug/requests"); f != (Filter{}) {
		t.Fatalf("no query should match all, got %+v", f)
	}
	if f := ParseQuery("/debug/requests?bogus=1&n=x"); f != (Filter{}) {
		t.Fatalf("unknown keys and bad ints should be ignored, got %+v", f)
	}
}

// blockingSink wedges its first Write until released — the pathological
// archive consumer.
type blockingSink struct {
	release chan struct{}
	once    sync.Once
	writes  int
	mu      sync.Mutex
}

func (s *blockingSink) Write(p []byte) (int, error) {
	s.once.Do(func() { <-s.release })
	s.mu.Lock()
	s.writes++
	s.mu.Unlock()
	return len(p), nil
}

func TestArchiveNeverBlocksTransferPath(t *testing.T) {
	sink := &blockingSink{release: make(chan struct{})}
	r := NewRecorder(Config{Ring: 8, Archive: sink, ArchiveQueue: 2})

	// With the sink wedged, one event sits in Write, two fit in the
	// queue, and everything beyond drops — but every Finish returns
	// promptly.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			record(r, "direct", "a.bin", "ok")
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Finish blocked on a wedged archive sink")
	}
	if dropped := r.ArchiveDropped(); dropped == 0 {
		t.Fatal("no archive drops counted despite a wedged sink")
	}
	close(sink.release)
	r.CloseArchive()
	delivered := int(r.Seen()) - int(r.ArchiveDropped())
	sink.mu.Lock()
	writes := sink.writes
	sink.mu.Unlock()
	if writes != delivered {
		t.Fatalf("sink got %d writes, want %d (10 - %d dropped)", writes, delivered, r.ArchiveDropped())
	}
}

type failingSink struct{}

func (failingSink) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestArchiveWriteFailuresCount(t *testing.T) {
	r := NewRecorder(Config{Ring: 8, Archive: failingSink{}})
	record(r, "direct", "a.bin", "ok")
	r.CloseArchive()
	if r.ArchiveDropped() != 1 {
		t.Fatalf("ArchiveDropped = %d, want 1", r.ArchiveDropped())
	}
}

func TestArchiveLines(t *testing.T) {
	var mu sync.Mutex
	var buf []byte
	sink := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		buf = append(buf, p...)
		mu.Unlock()
		return len(p), nil
	})
	r := NewRecorder(Config{Ring: 8, Archive: sink})
	record(r, "direct", "a.bin", "ok")
	record(r, "relay:r1", "b.bin", "refused")
	r.CloseArchive()

	lines := strings.Split(strings.TrimSpace(string(buf)), "\n")
	if len(lines) != 2 {
		t.Fatalf("archive has %d lines, want 2:\n%s", len(lines), buf)
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatalf("archive line not JSON: %v", err)
	}
	if ev.Path != "relay:r1" || ev.Class != "refused" {
		t.Fatalf("archived event = %+v", ev)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestNilRecorderAndTransferNoOp(t *testing.T) {
	var r *Recorder
	tr := r.Start("client", "direct", "a.bin")
	if tr != nil {
		t.Fatal("nil recorder returned a live handle")
	}
	// Every handle method must be callable on nil.
	tr.Phase("dial")
	tr.StoreBytes(1)
	tr.AddBytes(1)
	tr.SetTrace("ff")
	tr.SetCache("hit")
	tr.Retry()
	tr.SetWarm()
	tr.Finish("ok", "")
	if r.Seen() != 0 || r.Dropped() != 0 || r.ArchiveDropped() != 0 {
		t.Fatal("nil recorder counted something")
	}
	if r.Events(Filter{}) != nil || r.Active() != nil {
		t.Fatal("nil recorder served rows")
	}
	r.CloseArchive()
}

func TestRecorderConcurrentUse(t *testing.T) {
	r := NewRecorder(Config{Ring: 32})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				record(r, "direct", "a.bin", "ok")
			}
		}()
	}
	// Concurrent readers race the writers; the race detector is the
	// assertion.
	for i := 0; i < 20; i++ {
		r.Events(Filter{Path: "direct"})
		r.Active()
	}
	wg.Wait()
	if r.Seen() != 400 {
		t.Fatalf("Seen = %d, want 400", r.Seen())
	}
}

func TestDoLabeledGate(t *testing.T) {
	// Gate down: fn runs with the caller's context untouched.
	ran := false
	DoLabeled(context.Background(), "fetch", func(ctx context.Context) { ran = true })
	if !ran {
		t.Fatal("DoLabeled skipped fn with the gate down")
	}
	// Gate up: fn still runs (under labels).
	labelsActive.Add(1)
	defer labelsActive.Add(-1)
	ran = false
	DoLabeled(context.Background(), "fetch", func(ctx context.Context) { ran = true })
	if !ran {
		t.Fatal("DoLabeled skipped fn with the gate up")
	}
}

// BenchmarkFlightAppend prices one whole wide-event append: start,
// three phase marks, progress, finish into the ring. This is the
// always-on per-transfer overhead the ISSUE budget bounds.
func BenchmarkFlightAppend(b *testing.B) {
	r := NewRecorder(Config{Ring: 512})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := r.Start("client", "direct", "a.bin")
		tr.Phase("dial")
		tr.Phase("ttfb")
		tr.Phase("stream")
		tr.StoreBytes(1 << 20)
		tr.Finish("ok", "")
	}
}

// BenchmarkFlightDisabled prices the nil-recorder hot path: every site
// present, nothing recorded.
func BenchmarkFlightDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := r.Start("client", "direct", "a.bin")
		tr.Phase("dial")
		tr.Phase("ttfb")
		tr.Phase("stream")
		tr.StoreBytes(1 << 20)
		tr.Finish("ok", "")
	}
}
