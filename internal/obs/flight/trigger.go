// The trigger engine: the piece that turns "the SLO is burning" or
// "path X just went down" into a debug bundle captured at the moment it
// mattered. Anomaly first, evidence second is too late — the wide
// events, tail-kept spans, and profiles that explain a transition are
// all in bounded rings that will have rotated by the time a human asks.
//
// Triggers are rate-limited per path (overlapping SLO-burn and
// health-down triggers on one path collapse into one bundle), and the
// bundle build runs on a dedicated goroutine behind a bounded queue:
// a fire from the transfer path is a map lookup and a non-blocking
// channel send, and a failing bundle directory is a counter, never a
// stall.

package flight

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// TriggerConfig parameterizes an Engine. Recorder is required; the
// other sources are optional and simply leave their bundle sections
// empty.
type TriggerConfig struct {
	// Recorder supplies the wide events (filtered to the firing path).
	Recorder *Recorder
	// Spans, when set, supplies the tail-kept spans from which the
	// bundle stitches the firing path's traces.
	Spans *obs.SpanCollector
	// Profiler, when set, lists its freshest captures in the bundle.
	Profiler *Profiler
	// Metrics, when set, snapshots the daemon's /metrics page into the
	// bundle.
	Metrics func() []byte
	// Dir, when set, persists each bundle as JSON on disk (created if
	// missing). Empty keeps bundles in memory only.
	Dir string
	// Window is the per-path rate-limit in seconds: after a bundle
	// fires for a path, further triggers on it are suppressed for this
	// long (default 60).
	Window float64
	// MaxBundles bounds the retained bundles, in memory and on disk
	// (default 8; oldest evicted first).
	MaxBundles int
	// MaxEvents bounds the wide events captured per bundle (default 64).
	MaxEvents int
	// MaxTraces bounds the stitched traces captured per bundle
	// (default 4).
	MaxTraces int
	// QueueLen bounds pending bundle builds (default 4); a full queue
	// drops the trigger (counted) rather than blocking the firer.
	QueueLen int
	// Clock supplies "now" in seconds for rate limiting (default: wall
	// seconds since the engine was built).
	Clock func() float64
}

func (c TriggerConfig) withDefaults() TriggerConfig {
	if c.Window <= 0 {
		c.Window = 60
	}
	if c.MaxBundles <= 0 {
		c.MaxBundles = 8
	}
	if c.MaxEvents <= 0 {
		c.MaxEvents = 64
	}
	if c.MaxTraces <= 0 {
		c.MaxTraces = 4
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 4
	}
	if c.Clock == nil {
		start := time.Now()
		c.Clock = func() float64 { return time.Since(start).Seconds() }
	}
	return c
}

// Bundle is one captured debug snapshot: everything the flight
// recorder knew about the firing path at trigger time.
type Bundle struct {
	// Name is the bundle's identity ("bundle-000001-health-down"), also
	// its file name (with .json) when persisted.
	Name string `json:"name"`
	// Reason is the trigger taxonomy entry: "health-down" or
	// "slo-fast-burn".
	Reason string `json:"reason"`
	// Path is the path key that fired; Detail the trigger's free-form
	// context (the transition, the burn rate).
	Path   string `json:"path"`
	Detail string `json:"detail,omitempty"`
	// At is the trigger time on the engine clock; Wall the build time,
	// Unix nanoseconds.
	At   float64 `json:"at"`
	Wall int64   `json:"wall_ns"`

	// Events are the firing path's recent wide events, newest first.
	Events []Event `json:"events"`
	// Traces are stitched timelines (obs.FormatTrace) for traces
	// referenced by those events; TraceCount how many distinct traces
	// were available.
	Traces     []string `json:"traces,omitempty"`
	TraceCount int      `json:"trace_count"`
	// Goroutines is the full goroutine dump at build time.
	Goroutines string `json:"goroutines"`
	// Profiles lists the profiler's freshest on-disk captures.
	Profiles []string `json:"profiles,omitempty"`
	// Metrics is the /metrics page at build time.
	Metrics string `json:"metrics,omitempty"`
}

// BundleInfo is the /debug/bundle listing row.
type BundleInfo struct {
	Name       string  `json:"name"`
	Reason     string  `json:"reason"`
	Path       string  `json:"path"`
	At         float64 `json:"at"`
	Events     int     `json:"events"`
	TraceCount int     `json:"trace_count"`
}

// EngineStats counts the engine's decisions.
type EngineStats struct {
	// Fired is triggers accepted (bundle queued); Suppressed those
	// inside a path's rate-limit window; Dropped those lost to a full
	// build queue; WriteFailures bundles that could not be persisted
	// (still retained in memory).
	Fired         uint64 `json:"fired"`
	Suppressed    uint64 `json:"suppressed"`
	Dropped       uint64 `json:"dropped"`
	WriteFailures uint64 `json:"write_failures"`
	// Built is bundles completed.
	Built uint64 `json:"built"`
}

type trigger struct {
	reason, path, detail string
	at                   float64
}

// Engine watches for anomaly triggers and snapshots debug bundles.
// Safe for concurrent use; a nil *Engine no-ops every method, so hook
// sites need no enabled-checks.
type Engine struct {
	cfg TriggerConfig

	mu      sync.Mutex
	last    map[string]float64 // path -> last fired, engine clock
	bundles []*Bundle          // oldest first
	seq     uint64

	queue chan trigger
	done  chan struct{}
	close sync.Once

	fired, suppressed, dropped, writeFailures, built atomic.Uint64
}

// NewEngine builds an engine and starts its bundle worker.
func NewEngine(cfg TriggerConfig) *Engine {
	e := &Engine{
		cfg:  cfg.withDefaults(),
		last: make(map[string]float64),
	}
	e.queue = make(chan trigger, e.cfg.QueueLen)
	e.done = make(chan struct{})
	go e.worker()
	return e
}

// Close stops the worker after draining queued triggers. Nil-safe.
func (e *Engine) Close() {
	if e == nil {
		return
	}
	e.close.Do(func() { close(e.queue) })
	<-e.done
}

// Fire requests a bundle for path. The call never blocks: inside the
// path's rate-limit window it is suppressed, and with the build queue
// full it is dropped — both counted. Nil-safe.
func (e *Engine) Fire(reason, path, detail string) {
	if e == nil {
		return
	}
	now := e.cfg.Clock()
	e.mu.Lock()
	if last, ok := e.last[path]; ok && now-last < e.cfg.Window {
		e.mu.Unlock()
		e.suppressed.Add(1)
		return
	}
	e.last[path] = now
	e.mu.Unlock()
	select {
	case e.queue <- trigger{reason: reason, path: path, detail: detail, at: now}:
		e.fired.Add(1)
	default:
		e.dropped.Add(1)
	}
}

// FireHealth adapts obs.HealthConfig.OnTransition: only →down
// transitions trigger (degradations burn the SLO first; recovery is
// good news). Nil-safe.
func (e *Engine) FireHealth(path string, tr obs.HealthTransition) {
	if e == nil || tr.To != obs.HealthDown {
		return
	}
	e.Fire("health-down", path,
		fmt.Sprintf("%s->%s score=%.3f", tr.From, tr.To, tr.Score))
}

// FireBurn adapts obs.SLOConfig.OnFastBurn. Nil-safe.
func (e *Engine) FireBurn(path string, burn float64) {
	if e == nil {
		return
	}
	if path == "" {
		path = "(all)"
	}
	e.Fire("slo-fast-burn", path, fmt.Sprintf("fast availability burn %.1f", burn))
}

// Stats returns the engine's decision counters. Nil-safe.
func (e *Engine) Stats() EngineStats {
	if e == nil {
		return EngineStats{}
	}
	return EngineStats{
		Fired:         e.fired.Load(),
		Suppressed:    e.suppressed.Load(),
		Dropped:       e.dropped.Load(),
		WriteFailures: e.writeFailures.Load(),
		Built:         e.built.Load(),
	}
}

// Bundles lists retained bundles, newest first. Nil-safe.
func (e *Engine) Bundles() []BundleInfo {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]BundleInfo, 0, len(e.bundles))
	for i := len(e.bundles) - 1; i >= 0; i-- {
		b := e.bundles[i]
		out = append(out, BundleInfo{
			Name: b.Name, Reason: b.Reason, Path: b.Path, At: b.At,
			Events: len(b.Events), TraceCount: b.TraceCount,
		})
	}
	return out
}

// Bundle returns one retained bundle by name. Nil-safe.
func (e *Engine) Bundle(name string) (*Bundle, bool) {
	if e == nil {
		return nil, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, b := range e.bundles {
		if b.Name == name {
			return b, true
		}
	}
	return nil, false
}

func (e *Engine) worker() {
	defer close(e.done)
	for trig := range e.queue {
		e.build(trig)
	}
}

// build assembles and retains one bundle. Runs only on the worker
// goroutine, so the (comparatively) expensive snapshotting never sits
// on a transfer path.
func (e *Engine) build(trig trigger) {
	e.mu.Lock()
	e.seq++
	seq := e.seq
	e.mu.Unlock()

	b := &Bundle{
		Name:   fmt.Sprintf("bundle-%06d-%s", seq, trig.reason),
		Reason: trig.reason,
		Path:   trig.path,
		Detail: trig.detail,
		At:     trig.at,
		Wall:   time.Now().UnixNano(),
		Events: e.cfg.Recorder.Events(Filter{Path: trig.path, N: e.cfg.MaxEvents}),
	}
	b.Goroutines = string(GoroutineDump())
	b.Profiles = e.cfg.Profiler.Files()
	if e.cfg.Metrics != nil {
		b.Metrics = string(e.cfg.Metrics())
	}
	e.stitchInto(b)

	if e.cfg.Dir != "" {
		if err := e.persist(b); err != nil {
			e.writeFailures.Add(1)
		}
	}

	e.mu.Lock()
	e.bundles = append(e.bundles, b)
	var evicted []*Bundle
	if n := len(e.bundles) - e.cfg.MaxBundles; n > 0 {
		evicted = append(evicted, e.bundles[:n]...)
		e.bundles = append([]*Bundle(nil), e.bundles[n:]...)
	}
	e.mu.Unlock()
	if e.cfg.Dir != "" {
		for _, old := range evicted {
			os.Remove(filepath.Join(e.cfg.Dir, old.Name+".json"))
		}
	}
	e.built.Add(1)
}

// stitchInto attaches the firing path's stitched traces: the distinct
// trace IDs referenced by the bundle's wide events, rendered from the
// span source's retained spans. Spans for a trace that rotated out
// simply stitch to fewer (or zero) lines — evidence, not a guarantee.
func (e *Engine) stitchInto(b *Bundle) {
	if e.cfg.Spans == nil {
		return
	}
	spans := e.cfg.Spans.Spans()
	if len(spans) == 0 {
		return
	}
	byHex := make(map[string]obs.TraceID, len(spans))
	for _, s := range spans {
		byHex[s.Trace.String()] = s.Trace
	}
	seen := make(map[string]bool)
	for _, ev := range b.Events {
		if ev.Trace == "" || seen[ev.Trace] {
			continue
		}
		seen[ev.Trace] = true
		id, ok := byHex[ev.Trace]
		if !ok {
			continue // trace rotated out of the span ring
		}
		b.TraceCount++
		if len(b.Traces) < e.cfg.MaxTraces {
			b.Traces = append(b.Traces, obs.FormatTrace(id, obs.StitchTrace(id, spans)))
		}
	}
}

// persist writes the bundle as pretty JSON under Dir.
func (e *Engine) persist(b *Bundle) error {
	if err := os.MkdirAll(e.cfg.Dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(e.cfg.Dir, b.Name+".json"), data, 0o644)
}
