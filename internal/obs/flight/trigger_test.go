package flight

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// fakeClock is a settable engine clock.
type fakeClock struct {
	mu  sync.Mutex
	now float64
}

func (c *fakeClock) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d float64) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

// waitStats polls until the engine has built want bundles (the worker
// is asynchronous) or the deadline passes.
func waitBuilt(t *testing.T, e *Engine, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if e.Stats().Built >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("engine built %d bundles, want %d", e.Stats().Built, want)
}

func TestTriggerRateLimitWindow(t *testing.T) {
	clock := &fakeClock{}
	rec := NewRecorder(Config{Ring: 8})
	e := NewEngine(TriggerConfig{Recorder: rec, Window: 60, Clock: clock.Now})
	defer e.Close()

	e.Fire("health-down", "pathA", "")
	e.Fire("health-down", "pathA", "") // inside the window: suppressed
	clock.Advance(59)
	e.Fire("slo-fast-burn", "pathA", "") // still inside
	clock.Advance(2)
	e.Fire("health-down", "pathA", "") // window elapsed: fires

	s := e.Stats()
	if s.Fired != 2 || s.Suppressed != 2 {
		t.Fatalf("stats = %+v, want 2 fired / 2 suppressed", s)
	}
	waitBuilt(t, e, 2)
}

func TestTriggerOverlappingReasonsSamePathCollapse(t *testing.T) {
	clock := &fakeClock{}
	rec := NewRecorder(Config{Ring: 8})
	e := NewEngine(TriggerConfig{Recorder: rec, Window: 60, Clock: clock.Now})
	defer e.Close()

	// A path going down typically burns the SLO in the same breath: the
	// two triggers must collapse into one bundle.
	e.FireHealth("pathA", obs.HealthTransition{From: obs.HealthDegraded, To: obs.HealthDown})
	e.FireBurn("pathA", 14.2)
	// A different path rate-limits independently.
	e.FireBurn("pathB", 3.0)

	s := e.Stats()
	if s.Fired != 2 || s.Suppressed != 1 {
		t.Fatalf("stats = %+v, want 2 fired / 1 suppressed", s)
	}
	waitBuilt(t, e, 2)
	bundles := e.Bundles()
	if len(bundles) != 2 {
		t.Fatalf("retained %d bundles, want 2", len(bundles))
	}
	// Newest first: pathB's burn bundle, then pathA's health bundle.
	if bundles[0].Path != "pathB" || bundles[0].Reason != "slo-fast-burn" {
		t.Fatalf("newest bundle = %+v", bundles[0])
	}
	if bundles[1].Path != "pathA" || bundles[1].Reason != "health-down" {
		t.Fatalf("oldest bundle = %+v", bundles[1])
	}
}

func TestFireHealthOnlyOnDown(t *testing.T) {
	rec := NewRecorder(Config{Ring: 8})
	e := NewEngine(TriggerConfig{Recorder: rec})
	defer e.Close()
	e.FireHealth("p", obs.HealthTransition{From: obs.HealthDown, To: obs.HealthHealthy})
	e.FireHealth("p", obs.HealthTransition{From: obs.HealthHealthy, To: obs.HealthDegraded})
	if s := e.Stats(); s.Fired != 0 {
		t.Fatalf("recovery/degradation fired a bundle: %+v", s)
	}
}

func TestBundleWriteFailureNeverBlocks(t *testing.T) {
	// Dir is a plain file, so MkdirAll (and any write under it) fails.
	dir := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(dir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(Config{Ring: 8})
	e := NewEngine(TriggerConfig{Recorder: rec, Dir: dir})
	defer e.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		e.Fire("health-down", "pathA", "")
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Fire blocked on an unwritable bundle dir")
	}
	waitBuilt(t, e, 1)
	if s := e.Stats(); s.WriteFailures != 1 {
		t.Fatalf("stats = %+v, want 1 write failure", s)
	}
	// The bundle survives in memory even though persisting failed.
	if bundles := e.Bundles(); len(bundles) != 1 {
		t.Fatalf("retained %d bundles, want 1", len(bundles))
	}
}

func TestFireNeverBlocksOnFullQueue(t *testing.T) {
	// Wedge the worker inside its first build via a blocking Metrics
	// snapshot, then overflow the queue with distinct paths.
	release := make(chan struct{})
	var once sync.Once
	rec := NewRecorder(Config{Ring: 8})
	e := NewEngine(TriggerConfig{
		Recorder: rec,
		QueueLen: 1,
		Metrics: func() []byte {
			once.Do(func() { <-release })
			return []byte("# snapshot\n")
		},
	})

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			e.Fire("health-down", string(rune('a'+i)), "")
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Fire blocked on a full bundle queue")
	}
	if s := e.Stats(); s.Dropped == 0 {
		t.Fatalf("stats = %+v, want drops with a wedged worker", s)
	}
	close(release)
	e.Close()
	s := e.Stats()
	if s.Built != s.Fired {
		t.Fatalf("stats = %+v: every fired trigger must build after drain", s)
	}
}

func TestBundleContentAndStitchedTraces(t *testing.T) {
	rec := NewRecorder(Config{Ring: 16})
	spans := obs.NewSpanCollector(0)
	prof, err := NewProfiler(ProfilerConfig{Dir: t.TempDir(), Every: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := prof.CycleNow(); err != nil {
		t.Fatal(err)
	}

	// One traced failing transfer on the firing path, one unrelated.
	span := spans.StartSpan(obs.SpanContext{}, "client", "transfer")
	trace := span.Context().Trace.String()
	span.End(obs.ClassFailed, "connection reset")
	tr := rec.Start("client", "pathA", "obj.bin")
	tr.SetTrace(trace)
	tr.Finish("reset", "connection reset")
	record(rec, "pathB", "other.bin", "ok")

	e := NewEngine(TriggerConfig{
		Recorder: rec,
		Spans:    spans,
		Profiler: prof,
		Metrics:  func() []byte { return []byte("# metrics\n") },
	})
	defer e.Close()
	e.Fire("slo-fast-burn", "pathA", "fast availability burn 14.0")
	waitBuilt(t, e, 1)

	name := e.Bundles()[0].Name
	b, ok := e.Bundle(name)
	if !ok {
		t.Fatalf("bundle %q not retrievable", name)
	}
	if len(b.Events) != 1 || b.Events[0].Path != "pathA" {
		t.Fatalf("bundle events = %+v, want only pathA's", b.Events)
	}
	if b.TraceCount != 1 || len(b.Traces) != 1 || !strings.Contains(b.Traces[0], trace) {
		t.Fatalf("bundle traces = %d %v, want the stitched pathA trace", b.TraceCount, b.Traces)
	}
	if !strings.Contains(b.Goroutines, "goroutine") {
		t.Fatal("bundle missing goroutine dump")
	}
	if len(b.Profiles) == 0 {
		t.Fatal("bundle missing profiler captures")
	}
	if b.Metrics != "# metrics\n" {
		t.Fatalf("bundle metrics = %q", b.Metrics)
	}
}

func TestBundlePersistAndEviction(t *testing.T) {
	dir := t.TempDir()
	clock := &fakeClock{}
	rec := NewRecorder(Config{Ring: 8})
	e := NewEngine(TriggerConfig{Recorder: rec, Dir: dir, MaxBundles: 2, Window: 1, Clock: clock.Now})
	defer e.Close()

	for i := 0; i < 3; i++ {
		e.Fire("health-down", "pathA", "")
		clock.Advance(2)
	}
	waitBuilt(t, e, 3)
	if n := len(e.Bundles()); n != 2 {
		t.Fatalf("retained %d bundles, want 2", n)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("disk has %d bundle files, want 2 after eviction", len(entries))
	}
	// The persisted file is the bundle's JSON.
	data, err := os.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"reason": "health-down"`) {
		t.Fatalf("persisted bundle JSON missing reason:\n%.200s", data)
	}
}

func TestNilEngineNoOp(t *testing.T) {
	var e *Engine
	e.Fire("health-down", "p", "")
	e.FireHealth("p", obs.HealthTransition{To: obs.HealthDown})
	e.FireBurn("p", 3)
	if e.Stats() != (EngineStats{}) || e.Bundles() != nil {
		t.Fatal("nil engine reported state")
	}
	if _, ok := e.Bundle("x"); ok {
		t.Fatal("nil engine served a bundle")
	}
	e.Close()
}
