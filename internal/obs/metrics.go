package obs

import (
	"encoding/json"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// Histogram geometry. Fixed buckets keep snapshots mergeable across
// clients and runs (stats.Histogram.Merge requires identical geometry);
// the explicit under/overflow counters mean nothing is silently dropped.
const (
	// Probe latencies land in [0s, 20s) at 0.1 s resolution — wide enough
	// for the simulator's Low-category clients probing 100 KB at dial-up
	// rates, fine enough for loopback TCP.
	probeLatencyLo, probeLatencyHi = 0.0, 20.0
	probeLatencyBins               = 200

	// Transfer throughputs land in [0, 100) Mb/s at 0.5 Mb/s resolution,
	// covering the paper's access-link range with room above it.
	transferMbpsLo, transferMbpsHi = 0.0, 100.0
	transferMbpsBins               = 200
)

// Metrics aggregates events into per-P striped counters, per-path
// utilization tallies, and fixed-bucket histograms. Counter and
// histogram updates land on cache-line-padded stripes (one per P, see
// stripe.go) so concurrent transfer goroutines stop ping-ponging shared
// cache lines; Snapshot folds the stripes. The per-path map takes a
// read lock on the hot path (a write lock only the first time a path is
// seen). Snapshot may be called concurrently with observation.
type Metrics struct {
	counters *stripedCounters

	pathMu sync.RWMutex
	paths  map[string]*pathTally

	probeLatency *stripedHistogram // successful probe durations, seconds
	transferTput *stripedHistogram // successful transfer throughputs, Mb/s
}

// pathTally is one route's counters (keyed by PathID.Label()). The
// tallies stay single-cell atomics: path cardinality times stripe count
// would multiply memory for counters that are per-route, not
// per-chunk-hot.
type pathTally struct {
	probed   atomic.Int64 // appeared in a race or refresh
	selected atomic.Int64 // won the commit
	canceled atomic.Int64 // reaped as a loser
	failed   atomic.Int64 // probe or transfer failed outright
	bytes    atomic.Int64 // payload bytes delivered over this route
}

// NewMetrics returns an empty collector.
func NewMetrics() *Metrics {
	return &Metrics{
		counters:     newStripedCounters(),
		paths:        make(map[string]*pathTally),
		probeLatency: newStripedHistogram(probeLatencyLo, probeLatencyHi, probeLatencyBins),
		transferTput: newStripedHistogram(transferMbpsLo, transferMbpsHi, transferMbpsBins),
	}
}

func (m *Metrics) tally(label string) *pathTally {
	m.pathMu.RLock()
	t := m.paths[label]
	m.pathMu.RUnlock()
	if t != nil {
		return t
	}
	m.pathMu.Lock()
	defer m.pathMu.Unlock()
	if t = m.paths[label]; t == nil {
		t = &pathTally{}
		m.paths[label] = t
	}
	return t
}

// ProbeStarted counts the probe toward its route's appearance tally — the
// denominator of the paper's Section V utilization ratio.
func (m *Metrics) ProbeStarted(e ProbeStart) {
	m.counters.add(cProbesStarted, 1)
	m.tally(e.Path.Label()).probed.Add(1)
}

// ProbeFinished records the outcome: successful probes feed the latency
// histogram and the delivered-byte count; failures (other than engine
// cancellations, which ProbeCanceled already counted) feed the failure
// tallies.
func (m *Metrics) ProbeFinished(e ProbeEnd) {
	m.counters.add(cProbesFinished, 1)
	switch e.Class {
	case ClassOK:
		m.counters.add(cBytesDelivered, e.Bytes)
		m.probeLatency.observe(e.Duration, TraceID{})
	case ClassCanceled:
		// The reap decision was counted by ProbeCanceled; nothing more.
	default:
		m.counters.add(cProbesFailed, 1)
		m.tally(e.Path.Label()).failed.Add(1)
	}
}

// ProbeCanceled counts a loser reaped by the engine.
func (m *Metrics) ProbeCanceled(e ProbeCancel) {
	m.counters.add(cProbesCanceled, 1)
	m.tally(e.Path.Label()).canceled.Add(1)
}

// PathSelected counts the commit — the numerator of the utilization
// ratio for the winning route.
func (m *Metrics) PathSelected(e Selection) {
	m.counters.add(cSelections, 1)
	if e.Indirect {
		m.counters.add(cSelectionsIndirect, 1)
	}
	m.tally(e.Path.Label()).selected.Add(1)
}

// TransferStarted counts a payload transfer being issued.
func (m *Metrics) TransferStarted(e TransferStart) {
	m.counters.add(cTransfersStarted, 1)
}

// TransferFinished records the payload outcome; successes feed the
// throughput histogram.
func (m *Metrics) TransferFinished(e TransferEnd) {
	m.counters.add(cTransfersFinished, 1)
	if e.Class != ClassOK {
		m.counters.add(cTransfersFailed, 1)
		m.tally(e.Path.Label()).failed.Add(1)
		return
	}
	m.counters.add(cBytesDelivered, e.Bytes)
	m.tally(e.Path.Label()).bytes.Add(e.Bytes)
	if e.Duration > 0 {
		m.transferTput.observe(float64(e.Bytes)*8/e.Duration/1e6, TraceID{})
	}
}

// RetryScheduled counts a transport-level retry.
func (m *Metrics) RetryScheduled(e Retry) { m.counters.add(cRetries, 1) }

// TransferAborted counts a transport-level teardown by context death.
func (m *Metrics) TransferAborted(e Abort) { m.counters.add(cAborts, 1) }

// TransferProgress accumulates in-flight bytes. Unlike bytesDelivered
// (credited only on success), bytesStreamed counts every byte that
// arrived, so the gap between the two measures wasted transfer work.
// This is the hottest callback — once per received chunk — and the one
// the striped cells exist for.
func (m *Metrics) TransferProgress(e Progress) { m.counters.add(cBytesStreamed, e.Chunk) }

// PoolEvent tallies connection-pool transitions.
func (m *Metrics) PoolEvent(e Pool) {
	switch e.Op {
	case PoolReuse:
		m.counters.add(cPoolReuses, 1)
	case PoolMiss:
		m.counters.add(cPoolMisses, 1)
	case PoolPark:
		m.counters.add(cPoolParked, 1)
	case PoolEvict:
		m.counters.add(cPoolEvicted, 1)
	case PoolDiscard:
		m.counters.add(cPoolDiscarded, 1)
	}
}

var (
	_ Observer         = (*Metrics)(nil)
	_ ProgressObserver = (*Metrics)(nil)
	_ PoolObserver     = (*Metrics)(nil)
)

// PathSnapshot is one route's aggregated counters. Utilization is the
// paper's Section V metric: times selected over times offered (raced).
type PathSnapshot struct {
	Probed      int64   `json:"probed"`
	Selected    int64   `json:"selected"`
	Canceled    int64   `json:"canceled"`
	Failed      int64   `json:"failed"`
	Bytes       int64   `json:"bytes"`
	Utilization float64 `json:"utilization"`
}

// HistogramSnapshot is a point-in-time copy of a fixed-bucket histogram,
// with p50/p90/p99 precomputed so /debug/vars readers get percentiles
// without reimplementing the bucket math.
type HistogramSnapshot struct {
	Lo        float64 `json:"lo"`
	Hi        float64 `json:"hi"`
	Bins      []int64 `json:"bins"`
	Underflow int64   `json:"underflow"`
	Overflow  int64   `json:"overflow"`
	Total     int64   `json:"total"`

	// Sum is the sum of observed values: exact for the striped
	// histograms (Metrics, LatencyRecorder), a bin-center estimate for
	// snapshots taken from plain stats histograms, which carry no sum.
	Sum float64 `json:"sum"`

	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`

	// Exemplars holds, per populated bin that saw a traced observation,
	// the most recent trace that landed there — sparse, ordered by bin.
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) by linear
// interpolation within the fixed-width bin holding the target rank.
// Underflow observations clamp to Lo and overflow to Hi — the histogram
// only knows they were out of range. An empty histogram reports 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Total <= 0 || len(s.Bins) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Total)
	cum := float64(s.Underflow)
	if rank <= cum {
		return s.Lo
	}
	width := (s.Hi - s.Lo) / float64(len(s.Bins))
	for i, n := range s.Bins {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if rank <= next {
			frac := (rank - cum) / float64(n)
			return s.Lo + (float64(i)+frac)*width
		}
		cum = next
	}
	return s.Hi // rank fell into overflow
}

// ExemplarNear returns the exemplar whose bin contains the q-th
// quantile, or the nearest populated one at or below it — the "what
// trace explains my p99" lookup.
func (s HistogramSnapshot) ExemplarNear(q float64) (Exemplar, bool) {
	if len(s.Exemplars) == 0 || len(s.Bins) == 0 {
		return Exemplar{}, false
	}
	v := s.Quantile(q)
	width := (s.Hi - s.Lo) / float64(len(s.Bins))
	bin := int((v - s.Lo) / width)
	if bin >= len(s.Bins) {
		bin = len(s.Bins) - 1
	}
	best := -1
	for i, e := range s.Exemplars {
		if e.Bin <= bin {
			best = i
		}
	}
	if best < 0 {
		best = 0 // all exemplars above the quantile bin: take the lowest
	}
	return s.Exemplars[best], true
}

// Snapshot is a consistent-enough point-in-time view of a Metrics
// collector, ready for JSON serving (the daemons' /debug/vars endpoints)
// or test assertions. Counters are folded across their stripes;
// histograms are merged stripe by stripe under the stripe locks.
type Snapshot struct {
	ProbesStarted  int64 `json:"probes_started"`
	ProbesFinished int64 `json:"probes_finished"`
	ProbesFailed   int64 `json:"probes_failed"`
	ProbesCanceled int64 `json:"probes_canceled"`

	Selections         int64 `json:"selections"`
	SelectionsIndirect int64 `json:"selections_indirect"`

	TransfersStarted  int64 `json:"transfers_started"`
	TransfersFinished int64 `json:"transfers_finished"`
	TransfersFailed   int64 `json:"transfers_failed"`

	Retries int64 `json:"retries"`
	Aborts  int64 `json:"aborts"`

	BytesDelivered int64 `json:"bytes_delivered"`
	BytesStreamed  int64 `json:"bytes_streamed"`

	PoolReuses    int64 `json:"pool_reuses"`
	PoolMisses    int64 `json:"pool_misses"`
	PoolParked    int64 `json:"pool_parked"`
	PoolEvicted   int64 `json:"pool_evicted"`
	PoolDiscarded int64 `json:"pool_discarded"`

	// Paths maps the route label ("direct" or the relay name) to its
	// tallies, the per-relay utilization table of the paper's Section V.
	Paths map[string]PathSnapshot `json:"paths"`

	ProbeLatencySeconds HistogramSnapshot `json:"probe_latency_seconds"`
	TransferMbps        HistogramSnapshot `json:"transfer_mbps"`
}

func histSnapshot(h *stats.Histogram) HistogramSnapshot {
	s := HistogramSnapshot{
		Lo: h.Lo, Hi: h.Hi,
		Bins:      make([]int64, len(h.Bins)),
		Underflow: h.Underflow, Overflow: h.Overflow,
		Total: h.Total(),
	}
	copy(s.Bins, h.Bins)
	// Plain stats histograms carry no running sum; estimate one from bin
	// centers (under/overflow valued at the edges) so every snapshot has
	// a usable Sum. The striped histograms overwrite this with the exact
	// value.
	width := 0.0
	if len(h.Bins) > 0 {
		width = (h.Hi - h.Lo) / float64(len(h.Bins))
	}
	sum := float64(h.Underflow)*h.Lo + float64(h.Overflow)*h.Hi
	for i, n := range h.Bins {
		sum += float64(n) * (h.Lo + (float64(i)+0.5)*width)
	}
	s.Sum = sum
	s.P50 = s.Quantile(0.50)
	s.P90 = s.Quantile(0.90)
	s.P99 = s.Quantile(0.99)
	return s
}

// HistogramSnapshotOf copies an arbitrary stats histogram into the
// snapshot form (quantiles included, sum estimated from bin centers).
// The daemons use it to expose their server-side latency histograms
// through the same /metrics renderer the client metrics use. The caller
// provides any locking the histogram needs.
func HistogramSnapshotOf(h *stats.Histogram) HistogramSnapshot {
	return histSnapshot(h)
}

// LatencyRecorder is a self-initializing request-latency histogram for
// the daemons' /metrics endpoints: [0, 20) s at 0.1 s resolution,
// matching the client probe-latency geometry so the two views line up.
// Observations land on per-P striped cells (see stripe.go), so many
// handler goroutines recording concurrently no longer serialize on one
// mutex or share cache lines. The zero value is ready to use.
type LatencyRecorder struct {
	once sync.Once
	h    *stripedHistogram
}

func (l *LatencyRecorder) init() {
	l.once.Do(func() {
		l.h = newStripedHistogram(probeLatencyLo, probeLatencyHi, probeLatencyBins)
	})
}

// Observe records one request duration.
func (l *LatencyRecorder) Observe(d time.Duration) { l.ObserveTrace(d, TraceID{}) }

// ObserveTrace records one request duration attributed to a trace: the
// observation's bucket remembers the trace as its exemplar, linking the
// latency distribution on /metrics to the stitchable cross-hop trace
// that produced it. A zero trace records no exemplar.
func (l *LatencyRecorder) ObserveTrace(d time.Duration, trace TraceID) {
	l.init()
	l.h.observe(d.Seconds(), trace)
}

// Snapshot copies the distribution, quantiles, exact sum, and exemplars
// included.
func (l *LatencyRecorder) Snapshot() HistogramSnapshot {
	l.init()
	return l.h.snapshot()
}

// Snapshot captures the collector's current state.
func (m *Metrics) Snapshot() Snapshot {
	c := m.counters
	s := Snapshot{
		ProbesStarted:      c.load(cProbesStarted),
		ProbesFinished:     c.load(cProbesFinished),
		ProbesFailed:       c.load(cProbesFailed),
		ProbesCanceled:     c.load(cProbesCanceled),
		Selections:         c.load(cSelections),
		SelectionsIndirect: c.load(cSelectionsIndirect),
		TransfersStarted:   c.load(cTransfersStarted),
		TransfersFinished:  c.load(cTransfersFinished),
		TransfersFailed:    c.load(cTransfersFailed),
		Retries:            c.load(cRetries),
		Aborts:             c.load(cAborts),
		BytesDelivered:     c.load(cBytesDelivered),
		BytesStreamed:      c.load(cBytesStreamed),
		PoolReuses:         c.load(cPoolReuses),
		PoolMisses:         c.load(cPoolMisses),
		PoolParked:         c.load(cPoolParked),
		PoolEvicted:        c.load(cPoolEvicted),
		PoolDiscarded:      c.load(cPoolDiscarded),
		Paths:              make(map[string]PathSnapshot),
	}
	m.pathMu.RLock()
	for label, t := range m.paths {
		ps := PathSnapshot{
			Probed:   t.probed.Load(),
			Selected: t.selected.Load(),
			Canceled: t.canceled.Load(),
			Failed:   t.failed.Load(),
			Bytes:    t.bytes.Load(),
		}
		if ps.Probed > 0 {
			ps.Utilization = float64(ps.Selected) / float64(ps.Probed)
		}
		s.Paths[label] = ps
	}
	m.pathMu.RUnlock()
	s.ProbeLatencySeconds = m.probeLatency.snapshot()
	s.TransferMbps = m.transferTput.snapshot()
	return s
}

// PathLabels returns the snapshot's route labels, sorted, direct first —
// a stable iteration order for reports.
func (s Snapshot) PathLabels() []string {
	labels := make([]string, 0, len(s.Paths))
	for l := range s.Paths {
		if l != "direct" {
			labels = append(labels, l)
		}
	}
	sort.Strings(labels)
	if _, ok := s.Paths["direct"]; ok {
		labels = append([]string{"direct"}, labels...)
	}
	return labels
}

// JSON renders the snapshot as indented JSON. The snapshot is built from
// plain fields and maps, so marshaling cannot fail.
func (s Snapshot) JSON() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		panic("obs: snapshot marshal: " + err.Error())
	}
	return b
}
