package obs

import (
	"encoding/json"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// Histogram geometry. Fixed buckets keep snapshots mergeable across
// clients and runs (stats.Histogram.Merge requires identical geometry);
// the explicit under/overflow counters mean nothing is silently dropped.
const (
	// Probe latencies land in [0s, 20s) at 0.1 s resolution — wide enough
	// for the simulator's Low-category clients probing 100 KB at dial-up
	// rates, fine enough for loopback TCP.
	probeLatencyLo, probeLatencyHi = 0.0, 20.0
	probeLatencyBins               = 200

	// Transfer throughputs land in [0, 100) Mb/s at 0.5 Mb/s resolution,
	// covering the paper's access-link range with room above it.
	transferMbpsLo, transferMbpsHi = 0.0, 100.0
	transferMbpsBins               = 200
)

// Metrics aggregates events into atomic counters, per-path utilization
// tallies, and fixed-bucket histograms. All counter updates are
// lock-free; the per-path map takes a read lock on the hot path (a write
// lock only the first time a path is seen) and the two histograms share
// one short-lived mutex. Snapshot may be called concurrently with
// observation.
type Metrics struct {
	probesStarted  atomic.Int64
	probesFinished atomic.Int64
	probesFailed   atomic.Int64 // finished with a non-cancellation error
	probesCanceled atomic.Int64 // reaped by the engine after the race was decided

	selections         atomic.Int64
	selectionsIndirect atomic.Int64

	transfersStarted  atomic.Int64
	transfersFinished atomic.Int64
	transfersFailed   atomic.Int64

	retries atomic.Int64
	aborts  atomic.Int64

	bytesDelivered atomic.Int64 // payload bytes of successful probes + transfers
	bytesStreamed  atomic.Int64 // payload bytes observed in-flight, including attempts that later fail

	poolReuses    atomic.Int64
	poolMisses    atomic.Int64
	poolParked    atomic.Int64
	poolEvicted   atomic.Int64
	poolDiscarded atomic.Int64

	pathMu sync.RWMutex
	paths  map[string]*pathTally

	histMu       sync.Mutex
	probeLatency *stats.Histogram // successful probe durations, seconds
	transferTput *stats.Histogram // successful transfer throughputs, Mb/s
}

// pathTally is one route's counters (keyed by PathID.Label()).
type pathTally struct {
	probed   atomic.Int64 // appeared in a race or refresh
	selected atomic.Int64 // won the commit
	canceled atomic.Int64 // reaped as a loser
	failed   atomic.Int64 // probe or transfer failed outright
	bytes    atomic.Int64 // payload bytes delivered over this route
}

// NewMetrics returns an empty collector.
func NewMetrics() *Metrics {
	return &Metrics{
		paths:        make(map[string]*pathTally),
		probeLatency: stats.NewHistogram(probeLatencyLo, probeLatencyHi, probeLatencyBins),
		transferTput: stats.NewHistogram(transferMbpsLo, transferMbpsHi, transferMbpsBins),
	}
}

func (m *Metrics) tally(label string) *pathTally {
	m.pathMu.RLock()
	t := m.paths[label]
	m.pathMu.RUnlock()
	if t != nil {
		return t
	}
	m.pathMu.Lock()
	defer m.pathMu.Unlock()
	if t = m.paths[label]; t == nil {
		t = &pathTally{}
		m.paths[label] = t
	}
	return t
}

// ProbeStarted counts the probe toward its route's appearance tally — the
// denominator of the paper's Section V utilization ratio.
func (m *Metrics) ProbeStarted(e ProbeStart) {
	m.probesStarted.Add(1)
	m.tally(e.Path.Label()).probed.Add(1)
}

// ProbeFinished records the outcome: successful probes feed the latency
// histogram and the delivered-byte count; failures (other than engine
// cancellations, which ProbeCanceled already counted) feed the failure
// tallies.
func (m *Metrics) ProbeFinished(e ProbeEnd) {
	m.probesFinished.Add(1)
	switch e.Class {
	case ClassOK:
		m.bytesDelivered.Add(e.Bytes)
		m.histMu.Lock()
		m.probeLatency.Add(e.Duration)
		m.histMu.Unlock()
	case ClassCanceled:
		// The reap decision was counted by ProbeCanceled; nothing more.
	default:
		m.probesFailed.Add(1)
		m.tally(e.Path.Label()).failed.Add(1)
	}
}

// ProbeCanceled counts a loser reaped by the engine.
func (m *Metrics) ProbeCanceled(e ProbeCancel) {
	m.probesCanceled.Add(1)
	m.tally(e.Path.Label()).canceled.Add(1)
}

// PathSelected counts the commit — the numerator of the utilization
// ratio for the winning route.
func (m *Metrics) PathSelected(e Selection) {
	m.selections.Add(1)
	if e.Indirect {
		m.selectionsIndirect.Add(1)
	}
	m.tally(e.Path.Label()).selected.Add(1)
}

// TransferStarted counts a payload transfer being issued.
func (m *Metrics) TransferStarted(e TransferStart) {
	m.transfersStarted.Add(1)
}

// TransferFinished records the payload outcome; successes feed the
// throughput histogram.
func (m *Metrics) TransferFinished(e TransferEnd) {
	m.transfersFinished.Add(1)
	if e.Class != ClassOK {
		m.transfersFailed.Add(1)
		m.tally(e.Path.Label()).failed.Add(1)
		return
	}
	m.bytesDelivered.Add(e.Bytes)
	m.tally(e.Path.Label()).bytes.Add(e.Bytes)
	if e.Duration > 0 {
		m.histMu.Lock()
		m.transferTput.Add(float64(e.Bytes) * 8 / e.Duration / 1e6)
		m.histMu.Unlock()
	}
}

// RetryScheduled counts a transport-level retry.
func (m *Metrics) RetryScheduled(e Retry) { m.retries.Add(1) }

// TransferAborted counts a transport-level teardown by context death.
func (m *Metrics) TransferAborted(e Abort) { m.aborts.Add(1) }

// TransferProgress accumulates in-flight bytes. Unlike bytesDelivered
// (credited only on success), bytesStreamed counts every byte that
// arrived, so the gap between the two measures wasted transfer work.
func (m *Metrics) TransferProgress(e Progress) { m.bytesStreamed.Add(e.Chunk) }

// PoolEvent tallies connection-pool transitions.
func (m *Metrics) PoolEvent(e Pool) {
	switch e.Op {
	case PoolReuse:
		m.poolReuses.Add(1)
	case PoolMiss:
		m.poolMisses.Add(1)
	case PoolPark:
		m.poolParked.Add(1)
	case PoolEvict:
		m.poolEvicted.Add(1)
	case PoolDiscard:
		m.poolDiscarded.Add(1)
	}
}

var (
	_ Observer         = (*Metrics)(nil)
	_ ProgressObserver = (*Metrics)(nil)
	_ PoolObserver     = (*Metrics)(nil)
)

// PathSnapshot is one route's aggregated counters. Utilization is the
// paper's Section V metric: times selected over times offered (raced).
type PathSnapshot struct {
	Probed      int64   `json:"probed"`
	Selected    int64   `json:"selected"`
	Canceled    int64   `json:"canceled"`
	Failed      int64   `json:"failed"`
	Bytes       int64   `json:"bytes"`
	Utilization float64 `json:"utilization"`
}

// HistogramSnapshot is a point-in-time copy of a fixed-bucket histogram,
// with p50/p90/p99 precomputed so /debug/vars readers get percentiles
// without reimplementing the bucket math.
type HistogramSnapshot struct {
	Lo        float64 `json:"lo"`
	Hi        float64 `json:"hi"`
	Bins      []int64 `json:"bins"`
	Underflow int64   `json:"underflow"`
	Overflow  int64   `json:"overflow"`
	Total     int64   `json:"total"`

	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) by linear
// interpolation within the fixed-width bin holding the target rank.
// Underflow observations clamp to Lo and overflow to Hi — the histogram
// only knows they were out of range. An empty histogram reports 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Total <= 0 || len(s.Bins) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Total)
	cum := float64(s.Underflow)
	if rank <= cum {
		return s.Lo
	}
	width := (s.Hi - s.Lo) / float64(len(s.Bins))
	for i, n := range s.Bins {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if rank <= next {
			frac := (rank - cum) / float64(n)
			return s.Lo + (float64(i)+frac)*width
		}
		cum = next
	}
	return s.Hi // rank fell into overflow
}

// Snapshot is a consistent-enough point-in-time view of a Metrics
// collector, ready for JSON serving (the daemons' /debug/vars endpoints)
// or test assertions. Counters are read atomically; histograms are copied
// under their lock.
type Snapshot struct {
	ProbesStarted  int64 `json:"probes_started"`
	ProbesFinished int64 `json:"probes_finished"`
	ProbesFailed   int64 `json:"probes_failed"`
	ProbesCanceled int64 `json:"probes_canceled"`

	Selections         int64 `json:"selections"`
	SelectionsIndirect int64 `json:"selections_indirect"`

	TransfersStarted  int64 `json:"transfers_started"`
	TransfersFinished int64 `json:"transfers_finished"`
	TransfersFailed   int64 `json:"transfers_failed"`

	Retries int64 `json:"retries"`
	Aborts  int64 `json:"aborts"`

	BytesDelivered int64 `json:"bytes_delivered"`
	BytesStreamed  int64 `json:"bytes_streamed"`

	PoolReuses    int64 `json:"pool_reuses"`
	PoolMisses    int64 `json:"pool_misses"`
	PoolParked    int64 `json:"pool_parked"`
	PoolEvicted   int64 `json:"pool_evicted"`
	PoolDiscarded int64 `json:"pool_discarded"`

	// Paths maps the route label ("direct" or the relay name) to its
	// tallies, the per-relay utilization table of the paper's Section V.
	Paths map[string]PathSnapshot `json:"paths"`

	ProbeLatencySeconds HistogramSnapshot `json:"probe_latency_seconds"`
	TransferMbps        HistogramSnapshot `json:"transfer_mbps"`
}

func histSnapshot(h *stats.Histogram) HistogramSnapshot {
	s := HistogramSnapshot{
		Lo: h.Lo, Hi: h.Hi,
		Bins:      make([]int64, len(h.Bins)),
		Underflow: h.Underflow, Overflow: h.Overflow,
		Total: h.Total(),
	}
	copy(s.Bins, h.Bins)
	s.P50 = s.Quantile(0.50)
	s.P90 = s.Quantile(0.90)
	s.P99 = s.Quantile(0.99)
	return s
}

// HistogramSnapshotOf copies an arbitrary stats histogram into the
// snapshot form (quantiles included). The daemons use it to expose their
// server-side latency histograms through the same /metrics renderer the
// client metrics use. The caller provides any locking the histogram
// needs.
func HistogramSnapshotOf(h *stats.Histogram) HistogramSnapshot {
	return histSnapshot(h)
}

// LatencyRecorder is a self-initializing, mutex-guarded request-latency
// histogram for the daemons' /metrics endpoints: [0, 20) s at 0.1 s
// resolution, matching the client probe-latency geometry so the two
// views line up. The zero value is ready to use.
type LatencyRecorder struct {
	once sync.Once
	mu   sync.Mutex
	h    *stats.Histogram
}

func (l *LatencyRecorder) init() {
	l.once.Do(func() { l.h = stats.NewHistogram(probeLatencyLo, probeLatencyHi, probeLatencyBins) })
}

// Observe records one request duration.
func (l *LatencyRecorder) Observe(d time.Duration) {
	l.init()
	l.mu.Lock()
	l.h.Add(d.Seconds())
	l.mu.Unlock()
}

// Snapshot copies the distribution, quantiles included.
func (l *LatencyRecorder) Snapshot() HistogramSnapshot {
	l.init()
	l.mu.Lock()
	defer l.mu.Unlock()
	return histSnapshot(l.h)
}

// Snapshot captures the collector's current state.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		ProbesStarted:      m.probesStarted.Load(),
		ProbesFinished:     m.probesFinished.Load(),
		ProbesFailed:       m.probesFailed.Load(),
		ProbesCanceled:     m.probesCanceled.Load(),
		Selections:         m.selections.Load(),
		SelectionsIndirect: m.selectionsIndirect.Load(),
		TransfersStarted:   m.transfersStarted.Load(),
		TransfersFinished:  m.transfersFinished.Load(),
		TransfersFailed:    m.transfersFailed.Load(),
		Retries:            m.retries.Load(),
		Aborts:             m.aborts.Load(),
		BytesDelivered:     m.bytesDelivered.Load(),
		BytesStreamed:      m.bytesStreamed.Load(),
		PoolReuses:         m.poolReuses.Load(),
		PoolMisses:         m.poolMisses.Load(),
		PoolParked:         m.poolParked.Load(),
		PoolEvicted:        m.poolEvicted.Load(),
		PoolDiscarded:      m.poolDiscarded.Load(),
		Paths:              make(map[string]PathSnapshot),
	}
	m.pathMu.RLock()
	for label, t := range m.paths {
		ps := PathSnapshot{
			Probed:   t.probed.Load(),
			Selected: t.selected.Load(),
			Canceled: t.canceled.Load(),
			Failed:   t.failed.Load(),
			Bytes:    t.bytes.Load(),
		}
		if ps.Probed > 0 {
			ps.Utilization = float64(ps.Selected) / float64(ps.Probed)
		}
		s.Paths[label] = ps
	}
	m.pathMu.RUnlock()
	m.histMu.Lock()
	s.ProbeLatencySeconds = histSnapshot(m.probeLatency)
	s.TransferMbps = histSnapshot(m.transferTput)
	m.histMu.Unlock()
	return s
}

// PathLabels returns the snapshot's route labels, sorted, direct first —
// a stable iteration order for reports.
func (s Snapshot) PathLabels() []string {
	labels := make([]string, 0, len(s.Paths))
	for l := range s.Paths {
		if l != "direct" {
			labels = append(labels, l)
		}
	}
	sort.Strings(labels)
	if _, ok := s.Paths["direct"]; ok {
		labels = append([]string{"direct"}, labels...)
	}
	return labels
}

// JSON renders the snapshot as indented JSON. The snapshot is built from
// plain fields and maps, so marshaling cannot fail.
func (s Snapshot) JSON() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		panic("obs: snapshot marshal: " + err.Error())
	}
	return b
}
