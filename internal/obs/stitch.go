// Trace stitching: assembling spans collected by independent processes
// (client, relay, origin — merged from their JSONL archives or live
// collectors) into per-trace parent-child trees, and rendering a tree as
// a human-readable timeline.

package obs

import (
	"fmt"
	"sort"
	"strings"
)

// TraceNode is one span plus its children, sorted by start time.
type TraceNode struct {
	Span     Span
	Children []*TraceNode
}

// Walk visits the node and its descendants depth-first, parents before
// children.
func (n *TraceNode) Walk(visit func(*TraceNode, int)) { n.walk(visit, 0) }

func (n *TraceNode) walk(visit func(*TraceNode, int), depth int) {
	visit(n, depth)
	for _, c := range n.Children {
		c.walk(visit, depth+1)
	}
}

// TraceIDs returns the distinct trace IDs present in spans, in first-seen
// order.
func TraceIDs(spans []Span) []TraceID {
	var ids []TraceID
	seen := make(map[TraceID]bool)
	for _, s := range spans {
		if !seen[s.Trace] {
			seen[s.Trace] = true
			ids = append(ids, s.Trace)
		}
	}
	return ids
}

// StitchTrace assembles the spans of one trace into parent-child trees.
// Spans whose parent is zero — or whose parent never arrived (a process
// that was not archived, or a ring that wrapped) — become roots, so a
// partial merge still renders instead of vanishing. Siblings are ordered
// by start time; a complete well-formed trace yields exactly one root.
func StitchTrace(trace TraceID, spans []Span) []*TraceNode {
	byID := make(map[SpanID]*TraceNode)
	var members []*TraceNode
	for _, s := range spans {
		if s.Trace != trace || s.ID.IsZero() {
			continue
		}
		n := &TraceNode{Span: s}
		byID[s.ID] = n
		members = append(members, n)
	}
	var roots []*TraceNode
	for _, n := range members {
		if parent, ok := byID[n.Span.Parent]; ok && !n.Span.Parent.IsZero() && parent != n {
			parent.Children = append(parent.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	sortNodes := func(ns []*TraceNode) {
		sort.SliceStable(ns, func(i, j int) bool { return ns[i].Span.Start < ns[j].Span.Start })
	}
	sortNodes(roots)
	for _, n := range members {
		sortNodes(n.Children)
	}
	return roots
}

// FormatTrace renders stitched trees as an indented timeline, offsets
// relative to the earliest span start:
//
//	trace 3f2a…:
//	  +0.000ms   123.456ms  client/select            ok
//	  +0.102ms     4.310ms  ├ client/transfer        ok  path=r1
//	  …
func FormatTrace(trace TraceID, roots []*TraceNode) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s:\n", trace)
	base := int64(0)
	for i, r := range roots {
		if i == 0 || r.Span.Start < base {
			base = r.Span.Start
		}
	}
	for _, r := range roots {
		r.Walk(func(n *TraceNode, depth int) {
			attrs := formatAttrs(n.Span.Attrs)
			fmt.Fprintf(&b, "  %+10.3fms %11.3fms  %s%s/%s  %s%s\n",
				float64(n.Span.Start-base)/1e6,
				float64(n.Span.Duration)/1e6,
				strings.Repeat("  ", depth),
				n.Span.Service, n.Span.Phase,
				n.Span.Class, attrs)
		})
	}
	return b.String()
}

func formatAttrs(attrs map[string]string) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "  %s=%s", k, attrs[k])
	}
	return b.String()
}
