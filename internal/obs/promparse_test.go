package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestParsePromDecodesFamilies(t *testing.T) {
	p := NewProm()
	p.Counter("a_total", "A.", 12)
	p.Gauge("b_depth", "B.", 3.5)
	p.LabeledCounter("c_by_route_total", "C.", "route", map[string]float64{
		"direct": 7, "relay-1": 2, `quo"te`: 1,
	})
	fams, err := ParseProm(p.Bytes())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if v, ok := fams["a_total"].Value(); !ok || v != 12 {
		t.Fatalf("a_total = %v/%v", v, ok)
	}
	if fams["a_total"].Type != "counter" || fams["a_total"].Help != "A." {
		t.Fatalf("a_total meta %+v", fams["a_total"])
	}
	if v, ok := fams["b_depth"].Value(); !ok || v != 3.5 {
		t.Fatalf("b_depth = %v/%v", v, ok)
	}
	c := fams["c_by_route_total"]
	if len(c.Samples) != 3 {
		t.Fatalf("c samples %v", c.Samples)
	}
	if _, ok := c.Value(); ok {
		t.Fatal("Value() must refuse labeled families")
	}
	byRoute := map[string]float64{}
	for _, s := range c.Samples {
		byRoute[s.Labels["route"]] = s.Value
	}
	if byRoute["direct"] != 7 || byRoute["relay-1"] != 2 || byRoute[`quo"te`] != 1 {
		t.Fatalf("labels decoded wrong: %v", byRoute)
	}
}

func TestParsePromToleratesOpenMetricsFlavor(t *testing.T) {
	var rec LatencyRecorder
	for i := 0; i < 40; i++ {
		rec.ObserveTrace(time.Duration(i)*50*time.Millisecond, NewTraceID())
	}
	classic, om := renderBoth(func(p *Prom) {
		p.Counter("a_total", "A.", 1)
		p.Histogram("h_latency_seconds", "H.", rec.Snapshot())
	})
	fc, err := ParseProm(classic)
	if err != nil {
		t.Fatalf("classic parse: %v", err)
	}
	fo, err := ParseProm(om)
	if err != nil {
		t.Fatalf("om parse: %v", err)
	}
	hc, err := fc["h_latency_seconds"].Histogram()
	if err != nil {
		t.Fatalf("classic reconstruct: %v", err)
	}
	ho, err := fo["h_latency_seconds"].Histogram()
	if err != nil {
		t.Fatalf("om reconstruct: %v", err)
	}
	if hc.Total != ho.Total || hc.Sum != ho.Sum || len(hc.Bins) != len(ho.Bins) {
		t.Fatalf("exemplar-annotated scrape decoded differently: %+v vs %+v", hc, ho)
	}
}

func TestParsePromErrors(t *testing.T) {
	cases := []string{
		"no_type_line 5\n",
		"# TYPE a counter\na{b} 1\n",        // label without value
		"# TYPE a counter\na 1 2 3\n",       // too many fields
		"# TYPE a counter\na not-a-float\n", // bad value
		"# BOGUS a counter\n",               // unknown comment kind
	}
	for _, in := range cases {
		if _, err := ParseProm([]byte(in)); err == nil {
			t.Fatalf("ParseProm accepted %q", in)
		}
	}
}

func TestHistogramReconstructionMatchesQuantilesAtScrapeResolution(t *testing.T) {
	var rec LatencyRecorder
	for i := 0; i < 500; i++ {
		rec.Observe(time.Duration(i%120) * 25 * time.Millisecond)
	}
	orig := rec.Snapshot()
	p := NewProm()
	p.Histogram("h_latency_seconds", "H.", orig)
	fams, err := ParseProm(p.Bytes())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	got, err := fams["h_latency_seconds"].Histogram()
	if err != nil {
		t.Fatalf("reconstruct: %v", err)
	}
	if got.Total != orig.Total {
		t.Fatalf("total %d, want %d", got.Total, orig.Total)
	}
	if got.Sum != orig.Sum {
		t.Fatalf("sum %v, want %v", got.Sum, orig.Sum)
	}
	// The scrape coarsens 200 bins to 20 buckets; quantiles must agree
	// within one coarse bucket width.
	width := (got.Hi - got.Lo) / float64(len(got.Bins))
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if d := math.Abs(got.Quantile(q) - orig.Quantile(q)); d > width {
			t.Fatalf("q%.2f moved %v across the scrape, more than bucket width %v", q, d, width)
		}
	}
}

func TestHistogramReconstructionErrors(t *testing.T) {
	mk := func(body string) *PromFamily {
		fams, err := ParseProm([]byte(body))
		if err != nil {
			t.Fatalf("setup parse: %v", err)
		}
		for _, f := range fams {
			return f
		}
		return nil
	}
	if _, err := (*PromFamily)(nil).Histogram(); err == nil {
		t.Fatal("nil family reconstructed")
	}
	if _, err := mk("# TYPE a counter\na 1\n").Histogram(); err == nil {
		t.Fatal("counter family reconstructed as histogram")
	}
	noInf := "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n"
	if _, err := mk(noInf).Histogram(); err == nil {
		t.Fatal("histogram without +Inf reconstructed")
	}
	nonUniform := "# TYPE h histogram\n" +
		"h_bucket{le=\"1\"} 1\nh_bucket{le=\"2\"} 2\nh_bucket{le=\"10\"} 3\n" +
		"h_bucket{le=\"+Inf\"} 3\nh_sum 6\nh_count 3\n"
	if _, err := mk(nonUniform).Histogram(); err == nil {
		t.Fatal("non-uniform bucket widths reconstructed")
	}
}

func TestMergeHistogramSnapshotsExactAcrossScrapes(t *testing.T) {
	// Two relays with identical renderers; merging their scrapes must
	// equal a scrape of the union of observations.
	var recA, recB, recAll LatencyRecorder
	for i := 0; i < 300; i++ {
		// Quarter-second multiples are exact in binary, so the two
		// per-relay sums and the union sum agree bit-for-bit regardless
		// of accumulation order.
		d := time.Duration(i%60) * 250 * time.Millisecond
		if i%2 == 0 {
			recA.Observe(d)
		} else {
			recB.Observe(d)
		}
		recAll.Observe(d)
	}
	scrape := func(rec *LatencyRecorder) HistogramSnapshot {
		p := NewProm()
		p.Histogram("h_latency_seconds", "H.", rec.Snapshot())
		fams, err := ParseProm(p.Bytes())
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		h, err := fams["h_latency_seconds"].Histogram()
		if err != nil {
			t.Fatalf("reconstruct: %v", err)
		}
		return h
	}
	var merged HistogramSnapshot
	if err := MergeHistogramSnapshots(&merged, scrape(&recA)); err != nil {
		t.Fatalf("merge A: %v", err)
	}
	if err := MergeHistogramSnapshots(&merged, scrape(&recB)); err != nil {
		t.Fatalf("merge B: %v", err)
	}
	union := scrape(&recAll)
	if merged.Total != union.Total || merged.Sum != union.Sum {
		t.Fatalf("merged total/sum %d/%v, want %d/%v", merged.Total, merged.Sum, union.Total, union.Sum)
	}
	for i := range union.Bins {
		if merged.Bins[i] != union.Bins[i] {
			t.Fatalf("bin %d: merged %d, union %d", i, merged.Bins[i], union.Bins[i])
		}
	}
	if merged.P99 != union.P99 {
		t.Fatalf("merged p99 %v, union %v", merged.P99, union.P99)
	}
}

func TestMergeHistogramSnapshotsGeometryMismatch(t *testing.T) {
	a := HistogramSnapshot{Lo: 0, Hi: 10, Bins: make([]int64, 10), Total: 1}
	b := HistogramSnapshot{Lo: 0, Hi: 20, Bins: make([]int64, 10), Total: 1}
	if err := MergeHistogramSnapshots(&a, b); err == nil {
		t.Fatal("geometry mismatch merged silently")
	}
	// Merging into an empty target adopts the source wholesale (minus
	// exemplars, which are per-process handles).
	var empty HistogramSnapshot
	src := HistogramSnapshot{Lo: 0, Hi: 10, Bins: []int64{1, 2}, Total: 3, Sum: 4,
		Exemplars: []Exemplar{{Bin: 0, Trace: NewTraceID()}}}
	if err := MergeHistogramSnapshots(&empty, src); err != nil {
		t.Fatalf("empty-target merge: %v", err)
	}
	if empty.Total != 3 || empty.Exemplars != nil {
		t.Fatalf("empty-target merge kept exemplars or lost counts: %+v", empty)
	}
	// Merging an empty source into a populated target is a no-op.
	if err := MergeHistogramSnapshots(&empty, HistogramSnapshot{}); err != nil {
		t.Fatalf("empty-source merge: %v", err)
	}
	if empty.Total != 3 {
		t.Fatalf("empty-source merge changed totals: %+v", empty)
	}
}

func TestMergeHistogramSnapshotsDoesNotAliasSource(t *testing.T) {
	// The empty-target adoption path must copy the source's bins: the
	// fleet aggregator merges the same stored per-relay snapshots on
	// every Snapshot() call, and a shared backing array would let one
	// merge corrupt the stored state for the next.
	src := HistogramSnapshot{Lo: 0, Hi: 2, Bins: []int64{5, 5}, Total: 10, Sum: 10}
	other := HistogramSnapshot{Lo: 0, Hi: 2, Bins: []int64{1, 2}, Total: 3, Sum: 3}
	for round := 0; round < 3; round++ {
		var merged HistogramSnapshot
		if err := MergeHistogramSnapshots(&merged, src); err != nil {
			t.Fatalf("round %d adopt: %v", round, err)
		}
		if err := MergeHistogramSnapshots(&merged, other); err != nil {
			t.Fatalf("round %d merge: %v", round, err)
		}
		if merged.Total != 13 || merged.Bins[0] != 6 || merged.Bins[1] != 7 {
			t.Fatalf("round %d merged wrong: %+v", round, merged)
		}
		if src.Bins[0] != 5 || src.Bins[1] != 5 {
			t.Fatalf("round %d merge mutated its source: %v", round, src.Bins)
		}
	}
}

func TestPromUnquoteLabel(t *testing.T) {
	p := NewProm()
	p.LabeledGauge("g_weird", "G.", "k", map[string]float64{
		"line\nbreak": 1, `back\slash`: 2, `qu"ote`: 3,
	})
	fams, err := ParseProm(p.Bytes())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	got := map[string]float64{}
	for _, s := range fams["g_weird"].Samples {
		got[s.Labels["k"]] = s.Value
	}
	for k, v := range map[string]float64{"line\nbreak": 1, `back\slash`: 2, `qu"ote`: 3} {
		if got[k] != v {
			t.Fatalf("label %q round-tripped to %v (have %v)", k, got[k], got)
		}
	}
}

func TestParsePromHistogramOwnsSuffixSamples(t *testing.T) {
	var rec LatencyRecorder
	rec.Observe(time.Second)
	p := NewProm()
	p.Histogram("h_latency_seconds", "H.", rec.Snapshot())
	fams, err := ParseProm(p.Bytes())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(fams) != 1 {
		names := make([]string, 0, len(fams))
		for n := range fams {
			names = append(names, n)
		}
		t.Fatalf("histogram suffix samples leaked into families of their own: %s",
			strings.Join(names, ", "))
	}
}
