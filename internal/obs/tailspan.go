// Tail-based span retention: keep the traces worth keeping, not the
// traces that arrived last. The plain SpanCollector ring overwrites
// blindly, so under load the interesting operations — the errors, the
// slow tail the paper's analysis is about — are exactly the ones most
// likely to be gone by the time anyone looks. The tail policy buffers
// each trace until its local root span ends, then decides: error-class
// roots and roots in the slowest decile of recent operations are always
// kept, everything else survives with probability KeepProb. Kept traces
// live within a byte budget; when it overflows, the oldest boring
// (probabilistically kept) traces are evicted before any forced keep
// is. Every decision is counted, so the collector can report exactly
// how much it threw away and why it kept what it kept.

package obs

import (
	"math/rand"
	"sort"
)

// tailRootPhases are the phases that act as a process-local trace root
// even when they carry a cross-process parent: the relay's "forward"
// and origin's "serve" spans are children of the client's trace, but
// within their own process they are the span whose end completes the
// local view of the operation. "select" is the client-side root and
// normally also parentless.
var tailRootPhases = map[string]bool{"select": true, "forward": true, "serve": true}

// isTailRoot reports whether a span completes its trace's local view.
func isTailRoot(s Span) bool { return s.Parent.IsZero() || tailRootPhases[s.Phase] }

// TailConfig tunes tail-based retention.
type TailConfig struct {
	// ByteBudget bounds the estimated bytes of kept spans. Default 1 MiB.
	ByteBudget int
	// KeepProb is the survival probability of a boring (no error, not
	// slow) trace. Zero keeps no boring traces; there is no default —
	// the zero value is meaningful.
	KeepProb float64
	// SlowWindow is how many recent root durations feed the slow-decile
	// estimate. Default 256.
	SlowWindow int
	// MinSlowSamples is how many root durations must be on record
	// before the slow rule fires (an empty estimate would keep
	// everything). Default 20.
	MinSlowSamples int
	// MaxPending bounds how many undecided traces buffer at once;
	// overflow evicts (drops) the oldest pending trace. Default 1024.
	MaxPending int
	// Rand overrides the random source for the KeepProb draw (tests).
	Rand func() float64
}

func (cfg TailConfig) withDefaults() TailConfig {
	if cfg.ByteBudget <= 0 {
		cfg.ByteBudget = 1 << 20
	}
	if cfg.SlowWindow <= 0 {
		cfg.SlowWindow = 256
	}
	if cfg.MinSlowSamples <= 0 {
		cfg.MinSlowSamples = 20
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 1024
	}
	if cfg.Rand == nil {
		cfg.Rand = rand.Float64
	}
	return cfg
}

// TailStats reports what the tail policy did, cumulatively.
type TailStats struct {
	KeptTraces    uint64 `json:"kept_traces"`
	DroppedTraces uint64 `json:"dropped_traces"`
	ForcedError   uint64 `json:"forced_error"` // kept because the root errored
	ForcedSlow    uint64 `json:"forced_slow"`  // kept because the root was slowest-decile
	RandKept      uint64 `json:"rand_kept"`    // boring but survived the KeepProb draw
	Evicted       uint64 `json:"evicted"`      // kept traces later evicted by the byte budget
	DroppedSpans  uint64 `json:"dropped_spans"`
	KeptBytes     int    `json:"kept_bytes"` // current estimated bytes of kept spans
	ByteBudget    int    `json:"byte_budget"`
	Pending       int    `json:"pending"` // traces still awaiting their root
}

// traceBuf accumulates one trace's spans (pending or kept).
type traceBuf struct {
	trace  TraceID
	spans  []Span
	bytes  int
	order  uint64 // arrival sequence of the first span
	boring bool   // kept only by the KeepProb draw, evicted first
}

// tailState is the retention machinery hanging off a SpanCollector
// built by NewTailSpanCollector. Guarded by the collector's mutex.
type tailState struct {
	cfg TailConfig

	pending    map[TraceID]*traceBuf
	pendingSeq []TraceID // arrival order, for overflow eviction

	kept     map[TraceID]*traceBuf
	keptSize int
	// Budget-eviction order is oldest-boring-first, then oldest-forced:
	// two head-indexed FIFO queues in decision order, popped lazily (an
	// ID no longer in kept is skipped), so one eviction costs O(1)
	// amortized. A single spliced slice here turns every overflow into a
	// scan over the accumulated never-evicted forced keeps — a cost that
	// grows with uptime and lands on the request path.
	keptBoring []TraceID
	boringHead int
	keptForced []TraceID
	forcedHead int

	dropped map[TraceID]struct{} // decided-drop traces, bounded FIFO
	dropSeq []TraceID

	durs  []int64 // recent root durations, ring of SlowWindow
	durAt int
	// slowThresh caches the window's p90 so the per-root decision is a
	// compare, not a sort; slowStale counts samples since the last
	// recompute (refreshed every SlowWindow/8 — a sliding decile moves
	// far slower than the request rate).
	slowThresh int64
	slowStale  int

	stats TailStats
}

// NewTailSpanCollector returns a SpanCollector whose retention is the
// tail policy instead of the blind ring. The collector's public API is
// unchanged: Spans returns kept plus still-pending spans, Seen counts
// every span ever offered, Dropped counts spans the policy discarded.
func NewTailSpanCollector(cfg TailConfig) *SpanCollector {
	return &SpanCollector{tail: &tailState{
		cfg:     cfg.withDefaults(),
		pending: make(map[TraceID]*traceBuf),
		kept:    make(map[TraceID]*traceBuf),
		dropped: make(map[TraceID]struct{}),
	}}
}

// TailStats returns the tail policy's counters, or ok == false when the
// collector is nil or ring-based.
func (c *SpanCollector) TailStats() (TailStats, bool) {
	if c == nil || c.tail == nil {
		return TailStats{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.tail.stats
	st.KeptBytes = c.tail.keptSize
	st.ByteBudget = c.tail.cfg.ByteBudget
	st.Pending = len(c.tail.pending)
	return st, true
}

// spanBytes estimates a span's retained footprint: the struct plus its
// string payloads. An estimate is all the budget needs — it bounds
// memory to the right order, it does not account it.
func spanBytes(s Span) int {
	n := 96 + len(s.Service) + len(s.Phase) + len(s.Class) + len(s.Err)
	for k, v := range s.Attrs {
		n += 32 + len(k) + len(v)
	}
	return n
}

// addTail is the tail-mode intake, called with c.mu held.
func (t *tailState) addTail(s Span, seq uint64) {
	if buf, ok := t.kept[s.Trace]; ok {
		// Late span of an already-kept trace: keep it with its family.
		buf.spans = append(buf.spans, s)
		buf.bytes += spanBytes(s)
		t.keptSize += spanBytes(s)
		t.enforceBudget()
		return
	}
	if _, ok := t.dropped[s.Trace]; ok {
		t.stats.DroppedSpans++
		return
	}
	buf, ok := t.pending[s.Trace]
	if !ok {
		if len(t.pendingSeq) >= t.cfg.MaxPending {
			t.evictOldestPending()
		}
		// A typical trace holds a handful of phase spans (forward +
		// dial/ttfb/stream); pre-sizing skips the 1→2→4 append regrowth
		// on every request.
		buf = &traceBuf{trace: s.Trace, order: seq, spans: make([]Span, 0, 4)}
		t.pending[s.Trace] = buf
		t.pendingSeq = append(t.pendingSeq, s.Trace)
	}
	buf.spans = append(buf.spans, s)
	buf.bytes += spanBytes(s)
	if isTailRoot(s) {
		t.decide(buf, s)
	}
}

// decide applies the retention policy to a trace whose local root just
// ended.
func (t *tailState) decide(buf *traceBuf, root Span) {
	delete(t.pending, buf.trace)
	t.removePendingSeq(buf.trace)

	slow := t.isSlow(root.Duration)
	t.recordDuration(root.Duration)

	errored := root.Class != "" && root.Class != ClassOK.String()
	keep, boring := false, false
	switch {
	case errored:
		keep = true
		t.stats.ForcedError++
	case slow:
		keep = true
		t.stats.ForcedSlow++
	case t.cfg.KeepProb > 0 && t.cfg.Rand() < t.cfg.KeepProb:
		keep, boring = true, true
		t.stats.RandKept++
	}
	if !keep {
		t.dropTrace(buf)
		return
	}
	buf.boring = boring
	t.kept[buf.trace] = buf
	if boring {
		t.keptBoring = append(t.keptBoring, buf.trace)
	} else {
		t.keptForced = append(t.keptForced, buf.trace)
	}
	t.keptSize += buf.bytes
	t.stats.KeptTraces++
	t.enforceBudget()
}

// dropTrace records a decided drop and remembers the trace ID so late
// spans of the same trace are dropped too (bounded memory: the oldest
// remembered drops are forgotten first).
func (t *tailState) dropTrace(buf *traceBuf) {
	t.stats.DroppedTraces++
	t.stats.DroppedSpans += uint64(len(buf.spans))
	t.dropped[buf.trace] = struct{}{}
	t.dropSeq = append(t.dropSeq, buf.trace)
	const maxRemembered = 4096
	for len(t.dropSeq) > maxRemembered {
		delete(t.dropped, t.dropSeq[0])
		t.dropSeq = t.dropSeq[1:]
	}
}

// evictOldestPending drops the longest-waiting undecided trace — the
// pending-table overflow path, which only fires when MaxPending traces
// are simultaneously missing their root (leaked spans, or a span storm).
func (t *tailState) evictOldestPending() {
	for len(t.pendingSeq) > 0 {
		id := t.pendingSeq[0]
		t.pendingSeq = t.pendingSeq[1:]
		if buf, ok := t.pending[id]; ok {
			delete(t.pending, id)
			t.dropTrace(buf)
			return
		}
	}
}

// enforceBudget evicts kept traces until the estimate fits: oldest
// boring traces first, then oldest forced keeps — under sustained
// pressure the budget wins over the policy, visibly (Evicted counts).
func (t *tailState) enforceBudget() {
	for t.keptSize > t.cfg.ByteBudget {
		buf := t.popKept(&t.keptBoring, &t.boringHead)
		if buf == nil {
			buf = t.popKept(&t.keptForced, &t.forcedHead)
		}
		if buf == nil {
			return
		}
		delete(t.kept, buf.trace)
		t.keptSize -= buf.bytes
		t.stats.Evicted++
		t.stats.DroppedSpans += uint64(len(buf.spans))
		t.dropped[buf.trace] = struct{}{}
		t.dropSeq = append(t.dropSeq, buf.trace)
	}
}

// popKept returns the oldest still-kept trace on one eviction queue
// (nil when the queue drains), compacting the consumed prefix once it
// dominates the backing array.
func (t *tailState) popKept(q *[]TraceID, head *int) *traceBuf {
	for *head < len(*q) {
		id := (*q)[*head]
		*head++
		if *head > 64 && *head*2 > len(*q) {
			*q = append((*q)[:0], (*q)[*head:]...)
			*head = 0
		}
		if buf, ok := t.kept[id]; ok {
			return buf
		}
	}
	*q, *head = (*q)[:0], 0
	return nil
}

func (t *tailState) removePendingSeq(id TraceID) {
	for i, p := range t.pendingSeq {
		if p == id {
			t.pendingSeq = append(t.pendingSeq[:i], t.pendingSeq[i+1:]...)
			return
		}
	}
}

// recordDuration feeds one root duration into the slow-decile window.
func (t *tailState) recordDuration(d int64) {
	t.slowStale++
	if len(t.durs) < t.cfg.SlowWindow {
		t.durs = append(t.durs, d)
		return
	}
	t.durs[t.durAt] = d
	t.durAt = (t.durAt + 1) % len(t.durs)
}

// isSlow reports whether d falls in the slowest decile of the recent
// root durations on record (false until MinSlowSamples are in). The
// decile threshold is cached and refreshed every SlowWindow/8 samples:
// sorting the whole window per root would put an O(n log n) pass — and
// its allocation — on every request's critical section for a quantile
// that barely moves between adjacent samples.
func (t *tailState) isSlow(d int64) bool {
	if len(t.durs) < t.cfg.MinSlowSamples {
		return false
	}
	refreshEvery := t.cfg.SlowWindow / 8
	if refreshEvery < 1 {
		refreshEvery = 1
	}
	if t.slowStale >= refreshEvery || t.slowThresh == 0 {
		sorted := make([]int64, len(t.durs))
		copy(sorted, t.durs)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		t.slowThresh = sorted[(len(sorted)*9)/10]
		t.slowStale = 0
	}
	return d >= t.slowThresh
}

// tailSpans returns kept-then-pending spans, each group ordered by the
// trace's arrival sequence. Called with c.mu held; this is the cold
// read path (debug pages, shutdown archives), so sorting here keeps the
// per-request write path free of ordering work.
func (t *tailState) tailSpans() []Span {
	keptBufs := make([]*traceBuf, 0, len(t.kept))
	for _, buf := range t.kept {
		keptBufs = append(keptBufs, buf)
	}
	sort.Slice(keptBufs, func(i, j int) bool { return keptBufs[i].order < keptBufs[j].order })
	var out []Span
	for _, buf := range keptBufs {
		out = append(out, buf.spans...)
	}
	for _, id := range t.pendingSeq {
		if buf, ok := t.pending[id]; ok {
			out = append(out, buf.spans...)
		}
	}
	return out
}
