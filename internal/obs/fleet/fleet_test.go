package fleet

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/daemon"
	"repro/internal/httpx"
	"repro/internal/obs"
	"repro/internal/relay"
)

// staticSource is a hand-rolled fleet view for tests.
type staticSource struct {
	mu      sync.Mutex
	targets []Target
}

func (s *staticSource) Targets() []Target {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Target(nil), s.targets...)
}

// fakeClock is an injectable, advanceable clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// testRelay is one loopback fleet member: a forwarding relay plus the
// same daemon mux relayd serves, so the aggregator scrapes exactly what
// production exposes.
type testRelay struct {
	relay   *relay.Relay
	data    net.Listener
	metrics net.Listener
	stop    context.CancelFunc
}

func startTestRelay(t *testing.T) *testRelay {
	t.Helper()
	health := obs.NewHealthMonitor(obs.HealthConfig{Clock: obs.WallClock()})
	r := relay.New(relay.WithHealthMonitor(health))
	dl, err := r.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	d := &daemon.Daemon{
		Prefix: "relay",
		Prom: func(p *obs.Prom) {
			p.Counter("relay_requests_total", "Requests handled, including failures.", float64(r.Requests.Load()))
			p.Counter("relay_bytes_relayed_total", "Response-body bytes forwarded to clients.", float64(r.BytesRelayed.Load()))
			p.Histogram("relay_forward_latency_seconds", "Request forwarding times.", r.LatencySnapshot())
		},
		Health: health,
	}
	ml, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go (&httpx.Server{Mux: d.Mux()}).ServeListener(ctx, ml)
	tr := &testRelay{relay: r, data: dl, metrics: ml, stop: cancel}
	t.Cleanup(func() {
		cancel()
		dl.Close()
		ml.Close()
	})
	return tr
}

// fetchVia drives one absolute-form GET through a relay and returns the
// response status (0 on transport failure).
func fetchVia(t *testing.T, relayAddr, url, hostHdr string) int {
	t.Helper()
	conn, err := net.Dial("tcp", relayAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req := httpx.NewGet(url, hostHdr)
	if err := req.Write(conn); err != nil {
		return 0
	}
	resp, err := httpx.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		return 0
	}
	io.Copy(io.Discard, resp.Body)
	return resp.Status
}

// deadAddr reserves a loopback address that refuses connections.
func deadAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestFleetAggregatorE2E is the acceptance path of the fleet plane:
// three live loopback relays serving real traffic, scraped over real
// HTTP; an induced upstream failure shows up in the fleet's worst-paths
// ranking after one scrape; a killed relay goes stale after the
// configured silence; and the merged snapshot both serves /debug/fleet
// through a registryd-style daemon mux and renders lint-clean fleet_*
// families.
func TestFleetAggregatorE2E(t *testing.T) {
	origin := relay.NewOriginServer()
	const objName = "fleet.bin"
	const objSize = 16 << 10
	origin.Put(objName, objSize)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()
	originAddr := ol.Addr().String()

	relays := map[string]*testRelay{
		"r0": startTestRelay(t),
		"r1": startTestRelay(t),
		"r2": startTestRelay(t),
	}
	perRelay := map[string]int{"r0": 3, "r1": 2, "r2": 1}
	for name, n := range perRelay {
		for i := 0; i < n; i++ {
			if status := fetchVia(t, relays[name].data.Addr().String(),
				"http://"+originAddr+"/"+objName, originAddr); status != 200 {
				t.Fatalf("%s fetch %d: status %d", name, i, status)
			}
		}
	}

	src := &staticSource{}
	for name, tr := range relays {
		src.targets = append(src.targets, Target{
			Name:        name,
			Addr:        tr.data.Addr().String(),
			MetricsAddr: tr.metrics.Addr().String(),
			Health:      0.9,
		})
	}
	// One member the registry knows about but that exposes no metrics
	// address: tracked from registry state alone, permanently stale.
	src.targets = append(src.targets, Target{Name: "bare", Addr: "10.0.0.9:1"})

	clock := &fakeClock{now: time.Unix(1_700_000_000, 0)}
	agg := New(Config{
		Source:     src,
		Every:      time.Second,
		StaleAfter: 3 * time.Second,
		TopK:       4,
		Clock:      clock.Now,
	})

	ctx := context.Background()
	agg.ScrapeOnce(ctx)
	snap := agg.Snapshot()
	if len(snap.Relays) != 4 {
		t.Fatalf("tracked %d members, want 4", len(snap.Relays))
	}
	if snap.Live != 3 || snap.Stale != 1 {
		t.Fatalf("live/stale %d/%d, want 3/1 (the bare member has nothing to scrape)", snap.Live, snap.Stale)
	}
	if snap.ScrapeErrs != 0 {
		t.Fatalf("scrape errors %d on a healthy fleet", snap.ScrapeErrs)
	}
	if want := float64(3 + 2 + 1); snap.Requests != want {
		t.Fatalf("fleet requests %v, want %v", snap.Requests, want)
	}
	if want := float64(6 * objSize); snap.BytesRelayed != want {
		t.Fatalf("fleet bytes %v, want %v", snap.BytesRelayed, want)
	}
	if snap.ForwardLatency.Total != 6 {
		t.Fatalf("merged latency total %d, want 6", snap.ForwardLatency.Total)
	}
	for _, wp := range snap.WorstPaths {
		if wp.Path.Path != originAddr {
			t.Fatalf("unexpected fleet path %q, relays only talk to %q", wp.Path.Path, originAddr)
		}
	}
	for _, rs := range snap.Relays {
		if rs.Name == "bare" {
			if !rs.Stale || rs.Scraped || rs.AgeSeconds != -1 {
				t.Fatalf("bare member not reported never-scraped: %+v", rs)
			}
			continue
		}
		if rs.Stale || !rs.Scraped || rs.Err != "" {
			t.Fatalf("fresh relay %s misreported: %+v", rs.Name, rs)
		}
		if rs.Requests != float64(perRelay[rs.Name]) {
			t.Fatalf("%s requests %v, want %d", rs.Name, rs.Requests, perRelay[rs.Name])
		}
	}

	// Induce degradation: r0 starts forwarding to a dead upstream. The
	// failures fold into r0's path health, and the very next scrape must
	// surface that path at the top of the fleet-wide worst list.
	dead := deadAddr(t)
	for i := 0; i < 6; i++ {
		if status := fetchVia(t, relays["r0"].data.Addr().String(),
			"http://"+dead+"/x", dead); status == 200 {
			t.Fatal("fetch through a dead upstream succeeded")
		}
	}
	clock.Advance(time.Second)
	agg.ScrapeOnce(ctx)
	snap = agg.Snapshot()
	if len(snap.WorstPaths) == 0 {
		t.Fatal("no worst paths after induced degradation")
	}
	worst := snap.WorstPaths[0]
	if worst.Relay != "r0" || worst.Path.Path != dead {
		t.Fatalf("worst path %s via %s, want the dead upstream %s via r0", worst.Path.Path, worst.Relay, dead)
	}
	if healthy := snap.WorstPaths[len(snap.WorstPaths)-1]; worst.Path.Score >= healthy.Path.Score {
		t.Fatalf("dead path score %v not below healthy %v", worst.Path.Score, healthy.Path.Score)
	}

	// Kill r1's metrics endpoint. The next scrape fails and records the
	// error, but the relay is not stale until StaleAfter of silence.
	relays["r1"].stop()
	relays["r1"].metrics.Close()
	clock.Advance(time.Second)
	agg.ScrapeOnce(ctx)
	snap = agg.Snapshot()
	var r1 RelayStatus
	for _, rs := range snap.Relays {
		if rs.Name == "r1" {
			r1 = rs
		}
	}
	if r1.Err == "" {
		t.Fatal("killed relay's scrape recorded no error")
	}
	if r1.Stale {
		t.Fatalf("r1 stale %vs after its last success, StaleAfter is 3s", r1.AgeSeconds)
	}
	if snap.ScrapeErrs == 0 {
		t.Fatal("fleet scrape error counter did not move")
	}

	// After StaleAfter of silence it is stale, and the fleet totals stop
	// counting its last-known numbers.
	clock.Advance(3 * time.Second)
	agg.ScrapeOnce(ctx)
	snap = agg.Snapshot()
	for _, rs := range snap.Relays {
		if rs.Name == "r1" && !rs.Stale {
			t.Fatalf("r1 not stale after %vs of silence", rs.AgeSeconds)
		}
	}
	if snap.Live != 2 || snap.Stale != 2 {
		t.Fatalf("live/stale %d/%d, want 2/2 (r1 and bare)", snap.Live, snap.Stale)
	}
	// r0 counts its 6 failed forwards too: 3+6, plus r2's 1.
	if want := float64(3 + 6 + 1); snap.Requests != want {
		t.Fatalf("fleet requests %v after r1 went stale, want %v", snap.Requests, want)
	}

	// The snapshot must serve /debug/fleet through the same daemon mux
	// registryd uses, and round-trip its JSON.
	d := &daemon.Daemon{Prefix: "registry", Fleet: func() any { return agg.Snapshot() }}
	fl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	srvCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	go (&httpx.Server{Mux: d.Mux()}).ServeListener(srvCtx, fl)
	status, _, body, err := httpx.Get(ctx, nil, fl.Addr().String(), "/debug/fleet", nil, 5*time.Second)
	if err != nil || status != 200 {
		t.Fatalf("/debug/fleet: status %d err %v", status, err)
	}
	var served Snapshot
	if err := json.Unmarshal(body, &served); err != nil {
		t.Fatalf("/debug/fleet payload: %v", err)
	}
	if len(served.Relays) != 4 || served.Live != 2 {
		t.Fatalf("served fleet view %d relays / %d live, want 4 / 2", len(served.Relays), served.Live)
	}

	// And render lint-clean fleet_* families with the stale relay marked.
	p := obs.NewProm()
	snap.WriteProm(p)
	if err := obs.LintProm(p.Bytes()); err != nil {
		t.Fatalf("fleet families fail lint: %v\n%s", err, p.Bytes())
	}
	out := string(p.Bytes())
	for _, want := range []string{
		"fleet_relays 4\n",
		"fleet_relays_live 2\n",
		"fleet_relays_stale 2\n",
		`fleet_relay_stale{relay="r1"} 1`,
		`fleet_relay_stale{relay="r0"} 0`,
		"# TYPE fleet_forward_latency_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("fleet exposition missing %q:\n%s", want, out)
		}
	}
}

// TestFleetScrapeTolerates404Paths covers members that expose /metrics
// but no /debug/paths (no health monitor): the scrape still counts as
// fresh, with no path view.
func TestFleetScrapeTolerates404Paths(t *testing.T) {
	r := relay.New() // no health monitor: daemon serves no /debug/paths
	dl, err := r.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dl.Close()
	d := &daemon.Daemon{
		Prefix: "relay",
		Prom: func(p *obs.Prom) {
			p.Counter("relay_requests_total", "Requests.", float64(r.Requests.Load()))
			p.Counter("relay_bytes_relayed_total", "Bytes.", float64(r.BytesRelayed.Load()))
			p.Histogram("relay_forward_latency_seconds", "Latency.", r.LatencySnapshot())
		},
	}
	ml, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ml.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go (&httpx.Server{Mux: d.Mux()}).ServeListener(ctx, ml)

	src := &staticSource{targets: []Target{{Name: "plain", Addr: dl.Addr().String(),
		MetricsAddr: ml.Addr().String()}}}
	agg := New(Config{Source: src, Every: time.Second})
	agg.ScrapeOnce(ctx)
	snap := agg.Snapshot()
	if snap.Live != 1 || snap.ScrapeErrs != 0 {
		t.Fatalf("pathless relay scrape live=%d errs=%d, want 1/0", snap.Live, snap.ScrapeErrs)
	}
	if len(snap.Relays[0].Paths) != 0 || len(snap.WorstPaths) != 0 {
		t.Fatalf("pathless relay reported paths: %+v", snap.Relays[0].Paths)
	}
}

// TestFleetConfigDefaults pins the documented defaulting rules.
func TestFleetConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Every != 5*time.Second {
		t.Fatalf("Every default %v", cfg.Every)
	}
	if cfg.Timeout != 5*time.Second {
		t.Fatalf("Timeout default %v", cfg.Timeout)
	}
	if cfg.StaleAfter != 15*time.Second {
		t.Fatalf("StaleAfter default %v", cfg.StaleAfter)
	}
	if cfg.TopK != 10 {
		t.Fatalf("TopK default %d", cfg.TopK)
	}
	if cfg.Clock == nil {
		t.Fatal("Clock default nil")
	}
	long := Config{Every: time.Minute}.withDefaults()
	if long.Timeout != 5*time.Second {
		t.Fatalf("Timeout not capped at 5s: %v", long.Timeout)
	}
	short := Config{Every: 100 * time.Millisecond}.withDefaults()
	if short.Timeout != 100*time.Millisecond {
		t.Fatalf("Timeout %v, want the shorter cadence", short.Timeout)
	}
}
