// Package fleet is the aggregation half of the observability plane:
// a puller that walks the registry's view of the relay fleet, scrapes
// every live relay's /metrics and /debug/paths on a cadence, and merges
// the results into one fleet snapshot — per-relay freshness and
// staleness, fleet-wide merged latency histograms, and the top-K worst
// paths anywhere in the fleet.
//
// The paper's §V analysis ranks indirect paths from aggregate
// utilization observed across the deployment; related overlay-routing
// work makes its routing decisions from network-wide state. Every
// daemon in this repo already measures itself — this package is the
// single place those per-process views become a whole-fleet answer.
// registryd hosts it (the registry already knows who the relays are
// and where their metrics endpoints live, via the REGISTER metrics-addr
// extension), serves the snapshot on /debug/fleet, and re-exports the
// merged families as fleet_* on its own /metrics.
package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/httpx"
	"repro/internal/obs"
	"repro/internal/registry"
)

// Target is one scrapeable fleet member, as the registry sees it.
type Target struct {
	Name        string
	Addr        string
	MetricsAddr string
	Health      float64
	Down        bool
}

// Source enumerates the current fleet. Implementations must be safe
// for concurrent use (both adapters below are).
type Source interface {
	Targets() []Target
}

// serverSource adapts an in-process registry table.
type serverSource struct{ s *registry.Server }

func (ss serverSource) Targets() []Target { return entriesToTargets(ss.s.ListAll()) }

// ServerSource walks an in-process registry.Server — the registryd
// deployment, where the aggregator and the table share a process.
func ServerSource(s *registry.Server) Source { return serverSource{s} }

// rankedSetSource adapts a client-side cached ranked set.
type rankedSetSource struct{ rs *registry.RankedSet }

func (rs rankedSetSource) Targets() []Target { return entriesToTargets(rs.rs.All()) }

// RankedSetSource walks a delta-synced registry.RankedSet — for an
// aggregator running away from the registry, keeping its fleet view
// fresh over LISTD like any other discovery client.
func RankedSetSource(rs *registry.RankedSet) Source { return rankedSetSource{rs} }

func entriesToTargets(entries []registry.Entry) []Target {
	out := make([]Target, 0, len(entries))
	for _, e := range entries {
		out = append(out, Target{
			Name: e.Name, Addr: e.Addr, MetricsAddr: e.MetricsAddr,
			Health: e.Health, Down: e.Down,
		})
	}
	return out
}

// Config tunes an Aggregator.
type Config struct {
	// Source enumerates the fleet each round. Required.
	Source Source
	// Every is the scrape cadence (default 5s).
	Every time.Duration
	// Timeout bounds one relay's scrape (default min(Every, 5s)).
	Timeout time.Duration
	// StaleAfter is how long after its last successful scrape a relay
	// is reported stale (default 3×Every) — one slow scrape is noise,
	// three missed cadences is an outage.
	StaleAfter time.Duration
	// TopK bounds the worst-paths list (default 10).
	TopK int
	// Dial overrides the dialer (tests, simulated nets); nil means
	// net.Dialer.
	Dial func(ctx context.Context, network, addr string) (net.Conn, error)
	// Clock overrides time.Now (staleness tests).
	Clock func() time.Time
}

func (cfg Config) withDefaults() Config {
	if cfg.Every <= 0 {
		cfg.Every = 5 * time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = cfg.Every
		if cfg.Timeout > 5*time.Second {
			cfg.Timeout = 5 * time.Second
		}
	}
	if cfg.StaleAfter <= 0 {
		cfg.StaleAfter = 3 * cfg.Every
	}
	if cfg.TopK <= 0 {
		cfg.TopK = 10
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return cfg
}

// RelayStatus is one relay's slice of the fleet snapshot.
type RelayStatus struct {
	Name        string  `json:"name"`
	Addr        string  `json:"addr"`
	MetricsAddr string  `json:"metrics_addr,omitempty"`
	Health      float64 `json:"health"` // registry-reported, -1 unreported
	Down        bool    `json:"down"`   // registry's TTL-lapse view

	// Scraped is whether this relay has ever been scraped successfully.
	Scraped bool `json:"scraped"`
	// AgeSeconds is how long ago the last successful scrape was, -1
	// before any.
	AgeSeconds float64 `json:"age_s"`
	// Stale marks a relay whose last successful scrape is older than
	// StaleAfter (or that has never answered one).
	Stale bool `json:"stale"`
	// Err is the last scrape error, "" after a success.
	Err string `json:"err,omitempty"`

	Requests     float64 `json:"requests"`
	BytesRelayed float64 `json:"bytes_relayed"`

	ForwardLatency obs.HistogramSnapshot `json:"forward_latency,omitempty"`
	Paths          []obs.PathHealth      `json:"paths,omitempty"`

	lastOK time.Time
}

// WorstPath is one entry of the fleet-wide worst-paths list: a path as
// one relay's health monitor sees it, attributed to that relay.
type WorstPath struct {
	Relay string         `json:"relay"`
	Path  obs.PathHealth `json:"path"`
}

// Snapshot is the whole fleet at one instant — the /debug/fleet
// payload.
type Snapshot struct {
	Time       time.Time     `json:"time"`
	Relays     []RelayStatus `json:"relays"`
	Live       int           `json:"live"`
	Stale      int           `json:"stale"`
	Scrapes    uint64        `json:"scrapes"`
	ScrapeErrs uint64        `json:"scrape_errors"`

	// Requests and BytesRelayed sum the fresh relays' counters.
	Requests     float64 `json:"requests"`
	BytesRelayed float64 `json:"bytes_relayed"`

	// ForwardLatency merges every fresh relay's forward-latency
	// histogram (scrape-resolution geometry).
	ForwardLatency obs.HistogramSnapshot `json:"forward_latency"`

	// WorstPaths ranks the lowest-scoring paths across the whole fleet,
	// worst first, at most TopK.
	WorstPaths []WorstPath `json:"worst_paths,omitempty"`
}

// Aggregator scrapes the fleet on a cadence and serves merged
// snapshots. Safe for concurrent use.
type Aggregator struct {
	cfg Config

	mu         sync.Mutex
	relays     map[string]*RelayStatus
	scrapes    uint64
	scrapeErrs uint64
}

// New returns an aggregator over cfg.Source. Call Run (or ScrapeOnce)
// to populate it.
func New(cfg Config) *Aggregator {
	return &Aggregator{cfg: cfg.withDefaults(), relays: make(map[string]*RelayStatus)}
}

// Every returns the configured scrape cadence.
func (a *Aggregator) Every() time.Duration { return a.cfg.Every }

// Run scrapes immediately and then every cadence until ctx is done.
func (a *Aggregator) Run(ctx context.Context) {
	a.ScrapeOnce(ctx)
	t := time.NewTicker(a.cfg.Every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			a.ScrapeOnce(ctx)
		}
	}
}

// ScrapeOnce walks the current fleet and scrapes every member with a
// metrics address, concurrently. Members without one are tracked from
// registry state alone (permanently stale: nothing to scrape).
func (a *Aggregator) ScrapeOnce(ctx context.Context) {
	targets := a.cfg.Source.Targets()
	results := make([]scrapeResult, len(targets))
	var wg sync.WaitGroup
	for i, t := range targets {
		if t.MetricsAddr == "" {
			continue
		}
		wg.Add(1)
		go func(i int, t Target) {
			defer wg.Done()
			results[i] = a.scrape(ctx, t)
		}(i, t)
	}
	wg.Wait()

	now := a.cfg.Clock()
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, t := range targets {
		st := a.relays[t.Name]
		if st == nil {
			st = &RelayStatus{AgeSeconds: -1}
			a.relays[t.Name] = st
		}
		st.Name, st.Addr, st.MetricsAddr = t.Name, t.Addr, t.MetricsAddr
		st.Health, st.Down = t.Health, t.Down
		if t.MetricsAddr == "" {
			continue
		}
		r := results[i]
		a.scrapes++
		if r.err != nil {
			a.scrapeErrs++
			st.Err = r.err.Error()
			continue
		}
		st.Scraped = true
		st.Err = ""
		st.lastOK = now
		st.Requests = r.requests
		st.BytesRelayed = r.bytes
		st.ForwardLatency = r.latency
		st.Paths = r.paths
	}
}

type scrapeResult struct {
	err      error
	requests float64
	bytes    float64
	latency  obs.HistogramSnapshot
	paths    []obs.PathHealth
}

// scrape pulls one relay's /metrics and /debug/paths.
func (a *Aggregator) scrape(ctx context.Context, t Target) scrapeResult {
	status, _, body, err := httpx.Get(ctx, a.cfg.Dial, t.MetricsAddr, "/metrics", nil, a.cfg.Timeout)
	if err != nil {
		return scrapeResult{err: fmt.Errorf("metrics: %w", err)}
	}
	if status != 200 {
		return scrapeResult{err: fmt.Errorf("metrics: status %d", status)}
	}
	fams, err := obs.ParseProm(body)
	if err != nil {
		return scrapeResult{err: fmt.Errorf("metrics: %w", err)}
	}
	var res scrapeResult
	if f := fams["relay_requests_total"]; f != nil {
		res.requests, _ = f.Value()
	}
	if f := fams["relay_bytes_relayed_total"]; f != nil {
		res.bytes, _ = f.Value()
	}
	if f := fams["relay_forward_latency_seconds"]; f != nil {
		if h, err := f.Histogram(); err == nil {
			res.latency = h
		}
	}

	status, _, body, err = httpx.Get(ctx, a.cfg.Dial, t.MetricsAddr, "/debug/paths", nil, a.cfg.Timeout)
	switch {
	case err != nil:
		return scrapeResult{err: fmt.Errorf("paths: %w", err)}
	case status == 404:
		// A relay without a health monitor has no path view; the scrape
		// still counts as fresh.
	case status != 200:
		return scrapeResult{err: fmt.Errorf("paths: status %d", status)}
	default:
		var hs obs.HealthSnapshot
		if err := json.Unmarshal(body, &hs); err != nil {
			return scrapeResult{err: fmt.Errorf("paths: %w", err)}
		}
		res.paths = hs.Paths
	}
	return res
}

// Snapshot merges the current per-relay state into one fleet view.
func (a *Aggregator) Snapshot() Snapshot {
	now := a.cfg.Clock()
	a.mu.Lock()
	defer a.mu.Unlock()

	snap := Snapshot{Time: now, Scrapes: a.scrapes, ScrapeErrs: a.scrapeErrs}
	var worst []WorstPath
	for _, st := range a.relays {
		rs := *st // copy; the snapshot must not alias live state
		if rs.Scraped {
			rs.AgeSeconds = now.Sub(st.lastOK).Seconds()
			rs.Stale = now.Sub(st.lastOK) > a.cfg.StaleAfter
		} else {
			rs.AgeSeconds = -1
			rs.Stale = true
		}
		if rs.Stale {
			snap.Stale++
		} else {
			snap.Live++
			snap.Requests += rs.Requests
			snap.BytesRelayed += rs.BytesRelayed
			if rs.ForwardLatency.Total > 0 || len(rs.ForwardLatency.Bins) > 0 {
				// Geometry mismatches only arise across renderer versions;
				// skipping the odd one out beats poisoning the merge.
				_ = obs.MergeHistogramSnapshots(&snap.ForwardLatency, rs.ForwardLatency)
			}
			for _, ph := range rs.Paths {
				worst = append(worst, WorstPath{Relay: rs.Name, Path: ph})
			}
		}
		snap.Relays = append(snap.Relays, rs)
	}
	sort.Slice(snap.Relays, func(i, j int) bool { return snap.Relays[i].Name < snap.Relays[j].Name })
	sort.Slice(worst, func(i, j int) bool {
		if worst[i].Path.Score != worst[j].Path.Score {
			return worst[i].Path.Score < worst[j].Path.Score
		}
		if worst[i].Relay != worst[j].Relay {
			return worst[i].Relay < worst[j].Relay
		}
		return worst[i].Path.Path < worst[j].Path.Path
	})
	if len(worst) > a.cfg.TopK {
		worst = worst[:a.cfg.TopK]
	}
	snap.WorstPaths = worst
	return snap
}

// WriteProm renders the fleet snapshot as fleet_* families, appended to
// registryd's own /metrics exposition.
func (s Snapshot) WriteProm(p *obs.Prom) {
	p.Gauge("fleet_relays", "Relays the aggregator tracks.", float64(len(s.Relays)))
	p.Gauge("fleet_relays_live", "Tracked relays with a fresh scrape.", float64(s.Live))
	p.Gauge("fleet_relays_stale", "Tracked relays whose last scrape is stale (or that never answered).", float64(s.Stale))
	p.Counter("fleet_scrapes_total", "Scrape attempts across the fleet.", float64(s.Scrapes))
	p.Counter("fleet_scrape_errors_total", "Failed scrape attempts.", float64(s.ScrapeErrs))
	p.Counter("fleet_requests_total", "Requests handled across fresh relays.", s.Requests)
	p.Counter("fleet_bytes_relayed_total", "Bytes relayed across fresh relays.", s.BytesRelayed)
	if len(s.Relays) > 0 {
		health := make(map[string]float64, len(s.Relays))
		stale := make(map[string]float64, len(s.Relays))
		for _, rs := range s.Relays {
			health[rs.Name] = rs.Health
			if rs.Stale {
				stale[rs.Name] = 1
			} else {
				stale[rs.Name] = 0
			}
		}
		p.LabeledGauge("fleet_relay_health", "Registry-reported relay health (-1 unreported).", "relay", health)
		p.LabeledGauge("fleet_relay_stale", "Whether the relay's last scrape is stale.", "relay", stale)
	}
	p.Histogram("fleet_forward_latency_seconds", "Forward latencies merged across fresh relays.", s.ForwardLatency)
}
