// Distributed tracing: the cross-hop span model that turns the client,
// relay, and origin into one observable system.
//
// The paper's analysis attributes indirect-path wins and penalties to
// where time is spent — connection setup, first byte, steady-state
// streaming — on each hop of client→relay→origin. A Span is one timed
// phase of one request on one service; spans share a TraceID minted at
// the root of a selection operation and propagated across process
// boundaries in the x-trace request header, so the spans recorded by
// three independent processes stitch into a single parent-child timeline
// per operation.
//
// Tracing is strictly opt-in: a nil *SpanCollector disables every span
// site (the helpers are nil-receiver no-ops), so the unobserved hot path
// pays only pointer comparisons. Unlike selection events — which carry
// transport-relative timestamps so the virtual-time simulator stays
// passive — spans carry wall-clock times, because their whole point is
// aligning records from processes that share no transport clock. Only
// the real stack records them.

package obs

import (
	"context"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"math/rand/v2"
	"sync"
	"time"
)

// TraceHeader is the request-header key that propagates the trace across
// hops: the client stamps it on probe and fetch requests, the relay
// continues it on the forwarded origin request. Lower-case to match the
// httpx codec's canonicalized header maps.
const TraceHeader = "x-trace"

// TraceID identifies one end-to-end operation across every process it
// touches. 128 bits, rendered as 32 hex digits.
type TraceID [16]byte

// SpanID identifies one span within a trace. 64 bits, 16 hex digits.
type SpanID [8]byte

// IsZero reports whether the ID is unset.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is unset.
func (s SpanID) IsZero() bool { return s == SpanID{} }

func (t TraceID) String() string { return hex.EncodeToString(t[:]) }
func (s SpanID) String() string  { return hex.EncodeToString(s[:]) }

// MarshalJSON renders the ID as a hex string ("" when zero, so parent
// links of root spans read as absent).
func (t TraceID) MarshalJSON() ([]byte, error) { return idJSON(t[:], t.IsZero()) }

// MarshalJSON renders the ID as a hex string ("" when zero).
func (s SpanID) MarshalJSON() ([]byte, error) { return idJSON(s[:], s.IsZero()) }

func idJSON(b []byte, zero bool) ([]byte, error) {
	if zero {
		return []byte(`""`), nil
	}
	return json.Marshal(hex.EncodeToString(b))
}

// UnmarshalJSON accepts the hex form ("" or absent means zero).
func (t *TraceID) UnmarshalJSON(b []byte) error { return idFromJSON(b, t[:]) }

// UnmarshalJSON accepts the hex form ("" or absent means zero).
func (s *SpanID) UnmarshalJSON(b []byte) error { return idFromJSON(b, s[:]) }

func idFromJSON(b, dst []byte) error {
	var str string
	if err := json.Unmarshal(b, &str); err != nil {
		return err
	}
	if str == "" {
		for i := range dst {
			dst[i] = 0
		}
		return nil
	}
	raw, err := hex.DecodeString(str)
	if err != nil || len(raw) != len(dst) {
		// Tolerate foreign IDs rather than failing a whole archive load:
		// an unparseable ID degrades to zero, exactly like a malformed
		// wire header degrades to a fresh trace.
		for i := range dst {
			dst[i] = 0
		}
		return nil
	}
	copy(dst, raw)
	return nil
}

// randomBytes fills b from math/rand/v2's ChaCha8 stream: OS-seeded,
// per-P, and lock-free, where crypto/rand would pay a getrandom(2)
// syscall per ID. Trace and span IDs need collision resistance, not
// secrecy — minting them must cost nanoseconds because every traced
// request mints several.
func randomBytes(b []byte) {
	for len(b) >= 8 {
		binary.BigEndian.PutUint64(b, rand.Uint64())
		b = b[8:]
	}
	if len(b) > 0 {
		var tail [8]byte
		binary.BigEndian.PutUint64(tail[:], rand.Uint64())
		copy(b, tail[:])
	}
}

// NewTraceID mints a random trace identifier.
func NewTraceID() TraceID {
	var t TraceID
	randomBytes(t[:])
	return t
}

// NewSpanID mints a random span identifier.
func NewSpanID() SpanID {
	var s SpanID
	randomBytes(s[:])
	return s
}

// SpanContext is the propagated slice of a span: enough for a child —
// in-process or across the wire — to link itself under a parent.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether the context names a real span.
func (sc SpanContext) Valid() bool { return !sc.Trace.IsZero() && !sc.Span.IsZero() }

// headerLen is the exact length of a well-formed x-trace value:
// 32 hex trace digits, '-', 16 hex span digits.
const headerLen = 32 + 1 + 16

// Header renders the context in x-trace wire form:
// "<32 hex trace>-<16 hex span>".
func (sc SpanContext) Header() string { return sc.Trace.String() + "-" + sc.Span.String() }

// ParseTraceHeader decodes an x-trace header value. It is deliberately
// unforgiving in format but forgiving in consequence: any malformed,
// truncated, oversized, or absent value yields ok == false, which
// callers treat as "start a fresh trace" — a bad header can never fail a
// request.
func ParseTraceHeader(v string) (sc SpanContext, ok bool) {
	if len(v) != headerLen || v[32] != '-' {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.Trace[:], []byte(v[:32])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.Span[:], []byte(v[33:])); err != nil {
		return SpanContext{}, false
	}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

// Span is one completed timed phase of one request on one service — the
// unit a SpanCollector retains and traceio archives. Times are wall
// clock (Unix nanoseconds) so spans from different processes on a
// time-synchronized host merge into one timeline.
type Span struct {
	Trace  TraceID `json:"trace"`
	ID     SpanID  `json:"span"`
	Parent SpanID  `json:"parent"` // zero for a trace root

	// Service names the process role recording the span: "client",
	// "relay", "origin".
	Service string `json:"svc"`
	// Phase names what the span timed: "select", "race", "transfer",
	// "dial", "request-write", "ttfb", "stream", "verify", "forward",
	// "serve".
	Phase string `json:"phase"`

	Start    int64 `json:"start"` // wall clock, Unix nanoseconds
	Duration int64 `json:"dur"`   // nanoseconds

	Class string            `json:"class"`           // ErrClass.String() of the outcome
	Err   string            `json:"err,omitempty"`   // failure detail, "" on success
	Attrs map[string]string `json:"attrs,omitempty"` // free-form dimensions (path, bytes, …)
}

// EndTime returns the span's end in Unix nanoseconds.
func (s Span) EndTime() int64 { return s.Start + s.Duration }

// Context returns the propagation slice of the span.
func (s Span) Context() SpanContext { return SpanContext{Trace: s.Trace, Span: s.ID} }

// DefaultSpanCap is the SpanCollector ring size when none is given:
// several hundred operations' worth of phases.
const DefaultSpanCap = 4096

// SpanCollector buffers completed spans in a bounded ring, oldest
// overwritten first — the span-side sibling of the event Tracer. Safe
// for concurrent use. A nil *SpanCollector is the disabled state: every
// method (and every ActiveSpan it would have produced) no-ops.
type SpanCollector struct {
	mu   sync.Mutex
	ring []Span
	next int
	seq  uint64
	full bool

	// tail, when set, replaces the ring with tail-based retention (see
	// tailspan.go / NewTailSpanCollector). Exactly one of ring/tail is
	// active.
	tail *tailState
}

// NewSpanCollector returns a collector retaining the last capacity spans
// (DefaultSpanCap when capacity <= 0).
func NewSpanCollector(capacity int) *SpanCollector {
	if capacity <= 0 {
		capacity = DefaultSpanCap
	}
	return &SpanCollector{ring: make([]Span, capacity)}
}

func (c *SpanCollector) add(s Span) {
	c.mu.Lock()
	c.seq++
	if c.tail != nil {
		c.tail.addTail(s, c.seq)
		c.mu.Unlock()
		return
	}
	c.ring[c.next] = s
	c.next++
	if c.next == len(c.ring) {
		c.next = 0
		c.full = true
	}
	c.mu.Unlock()
}

// Spans returns the retained spans, oldest first. Nil-safe.
func (c *SpanCollector) Spans() []Span {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tail != nil {
		return c.tail.tailSpans()
	}
	if !c.full {
		out := make([]Span, c.next)
		copy(out, c.ring[:c.next])
		return out
	}
	out := make([]Span, 0, len(c.ring))
	out = append(out, c.ring[c.next:]...)
	out = append(out, c.ring[:c.next]...)
	return out
}

// Seen returns how many spans the collector has ever received. Nil-safe.
func (c *SpanCollector) Seen() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.seq
}

// Dropped returns how many spans newer ones have overwritten. Nil-safe.
func (c *SpanCollector) Dropped() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tail != nil {
		return c.tail.stats.DroppedSpans
	}
	if !c.full {
		return 0
	}
	return c.seq - uint64(len(c.ring))
}

// StartSpan opens a span under parent (a zero or invalid parent roots a
// fresh trace) and returns its in-flight handle. On a nil collector it
// returns nil, which every ActiveSpan method treats as a no-op — span
// sites need no enabled-check beyond the one that produced the handle.
func (c *SpanCollector) StartSpan(parent SpanContext, service, phase string) *ActiveSpan {
	if c == nil {
		return nil
	}
	trace := parent.Trace
	if trace.IsZero() {
		trace = NewTraceID()
	}
	return &ActiveSpan{
		c:     c,
		begin: time.Now(),
		span: Span{
			Trace:   trace,
			ID:      NewSpanID(),
			Parent:  parent.Span,
			Service: service,
			Phase:   phase,
		},
	}
}

// Record adds an already-measured span under parent — for phases whose
// interval is known only after the fact (the streaming verifier's
// cumulative busy time). Nil-safe.
func (c *SpanCollector) Record(s Span) {
	if c == nil {
		return
	}
	if s.Trace.IsZero() {
		s.Trace = NewTraceID()
	}
	if s.ID.IsZero() {
		s.ID = NewSpanID()
	}
	if s.Class == "" {
		s.Class = ClassOK.String()
	}
	c.add(s)
}

// ActiveSpan is an in-flight span. It is not safe for concurrent use —
// one goroutine owns a span from StartSpan to End, matching how the
// transfer pipeline is structured. A nil *ActiveSpan no-ops everywhere.
type ActiveSpan struct {
	c     *SpanCollector
	begin time.Time
	span  Span
	ended bool
}

// Context returns the span's propagation slice (zero when nil), ready
// for ContextWithSpan or the x-trace header.
func (a *ActiveSpan) Context() SpanContext {
	if a == nil {
		return SpanContext{}
	}
	return a.span.Context()
}

// SetAttr attaches one free-form dimension to the span.
func (a *ActiveSpan) SetAttr(k, v string) {
	if a == nil {
		return
	}
	if a.span.Attrs == nil {
		a.span.Attrs = make(map[string]string, 4)
	}
	a.span.Attrs[k] = v
}

// End closes the span with the outcome class (and failure detail) and
// hands it to the collector. Only the first End takes effect.
func (a *ActiveSpan) End(class ErrClass, errText string) {
	if a == nil || a.ended {
		return
	}
	a.ended = true
	a.span.Start = a.begin.UnixNano()
	a.span.Duration = int64(time.Since(a.begin))
	a.span.Class = class.String()
	a.span.Err = errText
	a.c.add(a.span)
}

// EndOK closes the span successfully.
func (a *ActiveSpan) EndOK() { a.End(ClassOK, "") }

// spanCtxKey carries a SpanContext through a context.Context, linking
// engine-level root spans to the transport-level phase spans beneath
// them without widening any interface.
type spanCtxKey struct{}

// ContextWithSpan returns a context carrying sc as the current parent
// span.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// SpanFromContext returns the current parent span context, if any.
func SpanFromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc, ok && sc.Valid()
}
