package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

// tailSpan builds a root span (phase "forward") for one trace.
func tailRoot(trace TraceID, durNanos int64, class ErrClass) Span {
	return Span{
		Trace: trace, ID: NewSpanID(),
		Service: "relay", Phase: "forward",
		Start: 0, Duration: durNanos, Class: class.String(),
	}
}

// tailChild builds a non-root child span for a trace.
func tailChild(trace TraceID) Span {
	return Span{
		Trace: trace, ID: NewSpanID(), Parent: NewSpanID(),
		Service: "relay", Phase: "dial", Duration: 10, Class: ClassOK.String(),
	}
}

func keepAll() func() float64  { return func() float64 { return 0 } }
func keepNone() func() float64 { return func() float64 { return 0.999999 } }

func TestTailKeepProbZeroDropsBoring(t *testing.T) {
	c := NewTailSpanCollector(TailConfig{KeepProb: 0, Rand: keepNone()})
	for i := 0; i < 10; i++ {
		c.Record(tailRoot(NewTraceID(), 100, ClassOK))
	}
	st, ok := c.TailStats()
	if !ok {
		t.Fatal("TailStats not ok on a tail collector")
	}
	if st.KeptTraces != 0 || st.DroppedTraces != 10 {
		t.Fatalf("kept %d dropped %d, want 0/10", st.KeptTraces, st.DroppedTraces)
	}
	if got := len(c.Spans()); got != 0 {
		t.Fatalf("Spans() returned %d spans after dropping everything", got)
	}
	if c.Dropped() != 10 {
		t.Fatalf("Dropped() %d, want 10", c.Dropped())
	}
}

func TestTailKeepProbOneKeepsBoring(t *testing.T) {
	c := NewTailSpanCollector(TailConfig{KeepProb: 1, Rand: keepAll()})
	for i := 0; i < 10; i++ {
		c.Record(tailRoot(NewTraceID(), 100, ClassOK))
	}
	st, _ := c.TailStats()
	if st.KeptTraces != 10 || st.RandKept != 10 || st.DroppedTraces != 0 {
		t.Fatalf("kept %d randKept %d dropped %d, want 10/10/0",
			st.KeptTraces, st.RandKept, st.DroppedTraces)
	}
	if got := len(c.Spans()); got != 10 {
		t.Fatalf("Spans() returned %d, want 10", got)
	}
}

func TestTailErrorRootAlwaysKept(t *testing.T) {
	// KeepProb 0 and a never-keep Rand: only the forced rules can keep.
	c := NewTailSpanCollector(TailConfig{KeepProb: 0, Rand: keepNone()})
	errTrace := NewTraceID()
	c.Record(tailChild(errTrace))
	c.Record(tailRoot(errTrace, 100, ClassFailed))
	c.Record(tailRoot(NewTraceID(), 100, ClassOK)) // boring, dropped
	st, _ := c.TailStats()
	if st.ForcedError != 1 || st.KeptTraces != 1 {
		t.Fatalf("forcedError %d kept %d, want 1/1", st.ForcedError, st.KeptTraces)
	}
	spans := c.Spans()
	if len(spans) != 2 {
		t.Fatalf("kept %d spans, want the errored trace's 2", len(spans))
	}
	for _, s := range spans {
		if s.Trace != errTrace {
			t.Fatalf("kept span of trace %s, want only %s", s.Trace, errTrace)
		}
	}
}

func TestTailSlowDecileForcedKeep(t *testing.T) {
	c := NewTailSpanCollector(TailConfig{KeepProb: 0, Rand: keepNone()})
	// Window seeding: 18 fast roots and 2 slow ones put the p90 estimate
	// at the slow value, so later fast roots stay boring and a genuinely
	// slow root trips the forced-slow rule. (The threshold is computed
	// lazily on the first decision with MinSlowSamples on record.)
	for i := 0; i < 18; i++ {
		c.Record(tailRoot(NewTraceID(), 1000, ClassOK))
	}
	c.Record(tailRoot(NewTraceID(), 100000, ClassOK))
	c.Record(tailRoot(NewTraceID(), 100000, ClassOK))

	fast := NewTraceID()
	c.Record(tailRoot(fast, 1000, ClassOK))
	before, _ := c.TailStats()

	slow := NewTraceID()
	c.Record(tailRoot(slow, 500000, ClassOK))
	after, _ := c.TailStats()

	if after.ForcedSlow != before.ForcedSlow+1 {
		t.Fatalf("slow root did not bump ForcedSlow (%d -> %d)", before.ForcedSlow, after.ForcedSlow)
	}
	found := false
	for _, s := range c.Spans() {
		if s.Trace == slow {
			found = true
		}
		if s.Trace == fast {
			t.Fatal("fast boring root was kept despite KeepProb 0")
		}
	}
	if !found {
		t.Fatal("slow root's trace not in kept spans")
	}
}

func TestTailSlowThresholdSlidesWithWindow(t *testing.T) {
	// A tiny window with refresh-every-sample shows the cached threshold
	// tracking the ring: after the ring fills with slow samples, a
	// formerly-slow duration stops being remarkable.
	c := NewTailSpanCollector(TailConfig{
		KeepProb: 0, Rand: keepNone(),
		SlowWindow: 8, MinSlowSamples: 4,
	})
	// Descending durations: each new root is below the window's p90, so
	// none of the seeds trips the slow rule (the comparison is >=, so
	// identical or ascending values would).
	for d := int64(9); d >= 2; d-- {
		c.Record(tailRoot(NewTraceID(), d, ClassOK))
	}
	c.Record(tailRoot(NewTraceID(), 1000, ClassOK)) // slow vs single-digit window
	st1, _ := c.TailStats()
	if st1.ForcedSlow != 1 {
		t.Fatalf("ForcedSlow %d after outlier, want 1", st1.ForcedSlow)
	}
	// Fill the ring with 1000s; the threshold refreshes (SlowWindow/8 ==
	// 1 sample) and 500 is now below the decile.
	for i := 0; i < 8; i++ {
		c.Record(tailRoot(NewTraceID(), 1000, ClassOK))
	}
	before, _ := c.TailStats()
	c.Record(tailRoot(NewTraceID(), 500, ClassOK))
	after, _ := c.TailStats()
	if after.ForcedSlow != before.ForcedSlow {
		t.Fatalf("500ns root forced-slow against a window of 1000s (%d -> %d)",
			before.ForcedSlow, after.ForcedSlow)
	}
}

func TestTailBudgetEvictsBoringBeforeForced(t *testing.T) {
	// Budget sized to hold roughly two traces: keeping a boring trace, a
	// forced one, and another boring one must evict the oldest boring
	// trace, never the error.
	probe := spanBytes(tailRoot(NewTraceID(), 100, ClassOK))
	c := NewTailSpanCollector(TailConfig{
		KeepProb:   1,
		Rand:       keepAll(),
		ByteBudget: probe*2 + probe/2,
	})
	boring1, errT, boring2 := NewTraceID(), NewTraceID(), NewTraceID()
	c.Record(tailRoot(boring1, 100, ClassOK))
	c.Record(tailRoot(errT, 100, ClassFailed))
	c.Record(tailRoot(boring2, 100, ClassOK))

	st, _ := c.TailStats()
	if st.Evicted != 1 {
		t.Fatalf("Evicted %d, want 1", st.Evicted)
	}
	if st.KeptBytes > st.ByteBudget {
		t.Fatalf("KeptBytes %d exceeds budget %d", st.KeptBytes, st.ByteBudget)
	}
	traces := map[TraceID]bool{}
	for _, s := range c.Spans() {
		traces[s.Trace] = true
	}
	if traces[boring1] {
		t.Fatal("oldest boring trace survived; it should evict first")
	}
	if !traces[errT] || !traces[boring2] {
		t.Fatalf("kept set %v, want the error trace and the newest boring one", traces)
	}
}

func TestTailBudgetEvictsForcedWhenNoBoringLeft(t *testing.T) {
	probe := spanBytes(tailRoot(NewTraceID(), 100, ClassFailed))
	c := NewTailSpanCollector(TailConfig{
		KeepProb:   0,
		Rand:       keepNone(),
		ByteBudget: probe + probe/2,
	})
	first, second := NewTraceID(), NewTraceID()
	c.Record(tailRoot(first, 100, ClassFailed))
	c.Record(tailRoot(second, 100, ClassFailed))
	st, _ := c.TailStats()
	if st.Evicted != 1 {
		t.Fatalf("Evicted %d, want 1 (the older forced keep)", st.Evicted)
	}
	spans := c.Spans()
	if len(spans) != 1 || spans[0].Trace != second {
		t.Fatalf("kept %v, want only the newer forced trace %s", spans, second)
	}
}

func TestTailLateSpansFollowTheirTraceDecision(t *testing.T) {
	c := NewTailSpanCollector(TailConfig{KeepProb: 0, Rand: keepNone()})
	kept, droppedT := NewTraceID(), NewTraceID()
	c.Record(tailRoot(kept, 100, ClassFailed)) // forced keep
	c.Record(tailRoot(droppedT, 100, ClassOK)) // dropped
	// Late arrivals after the decision:
	c.Record(tailChild(kept))
	before, _ := c.TailStats()
	c.Record(tailChild(droppedT))
	after, _ := c.TailStats()

	if after.DroppedSpans != before.DroppedSpans+1 {
		t.Fatalf("late span of a dropped trace not counted (%d -> %d)",
			before.DroppedSpans, after.DroppedSpans)
	}
	var keptSpans int
	for _, s := range c.Spans() {
		if s.Trace == kept {
			keptSpans++
		}
		if s.Trace == droppedT {
			t.Fatal("late span of a dropped trace resurfaced")
		}
	}
	if keptSpans != 2 {
		t.Fatalf("kept trace holds %d spans, want root + late child", keptSpans)
	}
}

func TestTailPendingOverflowDropsOldest(t *testing.T) {
	c := NewTailSpanCollector(TailConfig{KeepProb: 1, Rand: keepAll(), MaxPending: 2})
	t1, t2, t3 := NewTraceID(), NewTraceID(), NewTraceID()
	c.Record(tailChild(t1))
	c.Record(tailChild(t2))
	c.Record(tailChild(t3)) // overflow: t1 evicted undecided
	st, _ := c.TailStats()
	if st.Pending != 2 {
		t.Fatalf("pending %d, want 2", st.Pending)
	}
	if st.DroppedTraces != 1 {
		t.Fatalf("droppedTraces %d, want the overflowed pending one", st.DroppedTraces)
	}
	// t1's root arriving later is a span of a dropped trace.
	c.Record(tailRoot(t1, 100, ClassFailed))
	st2, _ := c.TailStats()
	if st2.ForcedError != 0 {
		t.Fatal("root of an overflow-dropped trace was decided anyway")
	}
}

func TestTailSpansOrderKeptThenPending(t *testing.T) {
	c := NewTailSpanCollector(TailConfig{KeepProb: 1, Rand: keepAll()})
	first, second, pending := NewTraceID(), NewTraceID(), NewTraceID()
	c.Record(tailRoot(first, 100, ClassOK))
	c.Record(tailRoot(second, 100, ClassOK))
	c.Record(tailChild(pending)) // no root: stays pending
	spans := c.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Trace != first || spans[1].Trace != second || spans[2].Trace != pending {
		t.Fatalf("span order %v/%v/%v, want kept in decision order then pending",
			spans[0].Trace, spans[1].Trace, spans[2].Trace)
	}
}

func TestTailStatsOnRingCollectorNotOK(t *testing.T) {
	c := NewSpanCollector(16)
	if _, ok := c.TailStats(); ok {
		t.Fatal("ring collector reported tail stats")
	}
	var nilC *SpanCollector
	if _, ok := nilC.TailStats(); ok {
		t.Fatal("nil collector reported tail stats")
	}
}

func TestTailEvictionQueueCompaction(t *testing.T) {
	// Many keeps against a tiny budget exercise popKept's lazy skipping
	// and prefix compaction; the invariants are that kept bytes stay
	// within budget and Spans stays consistent throughout.
	probe := spanBytes(tailRoot(NewTraceID(), 100, ClassOK))
	c := NewTailSpanCollector(TailConfig{
		KeepProb:   1,
		Rand:       keepAll(),
		ByteBudget: probe * 4,
	})
	for i := 0; i < 500; i++ {
		class := ClassOK
		if i%7 == 0 {
			class = ClassFailed
		}
		c.Record(tailRoot(NewTraceID(), 100, class))
		if st, _ := c.TailStats(); st.KeptBytes > st.ByteBudget {
			t.Fatalf("iteration %d: kept bytes %d over budget %d", i, st.KeptBytes, st.ByteBudget)
		}
	}
	st, _ := c.TailStats()
	if st.KeptTraces != 500 {
		t.Fatalf("KeptTraces %d, want 500 decisions kept", st.KeptTraces)
	}
	if st.Evicted < 490 {
		t.Fatalf("Evicted %d, want nearly all of the 500 under a 4-trace budget", st.Evicted)
	}
	if got := len(c.Spans()); got > 4 {
		t.Fatalf("Spans() returned %d, want at most the budgeted 4", got)
	}
}

func TestIsTailRootPhases(t *testing.T) {
	root := Span{Phase: "forward", Parent: NewSpanID()}
	if !isTailRoot(root) {
		t.Fatal("forward span with a cross-process parent must still be a local root")
	}
	child := Span{Phase: "dial", Parent: NewSpanID()}
	if isTailRoot(child) {
		t.Fatal("dial child is not a root")
	}
	parentless := Span{Phase: "custom"}
	if !isTailRoot(parentless) {
		t.Fatal("parentless span is a root regardless of phase")
	}
}

func TestTailConfigDefaults(t *testing.T) {
	cfg := TailConfig{}.withDefaults()
	if cfg.ByteBudget != 1<<20 || cfg.SlowWindow != 256 ||
		cfg.MinSlowSamples != 20 || cfg.MaxPending != 1024 || cfg.Rand == nil {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
	if cfg.KeepProb != 0 {
		t.Fatal("KeepProb must default to zero — the zero value is meaningful")
	}
}

func TestTailStatsJSONFieldNames(t *testing.T) {
	c := NewTailSpanCollector(TailConfig{KeepProb: 1, Rand: keepAll()})
	c.Record(tailRoot(NewTraceID(), 100, ClassOK))
	st, _ := c.TailStats()
	b := mustJSON(t, st)
	for _, key := range []string{"kept_traces", "dropped_traces", "forced_error",
		"forced_slow", "rand_kept", "evicted", "dropped_spans", "kept_bytes",
		"byte_budget", "pending"} {
		if !strings.Contains(b, `"`+key+`"`) {
			t.Fatalf("TailStats JSON %s missing key %q", b, key)
		}
	}
}
