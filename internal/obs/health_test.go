package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// testHealthCfg is a small, fast-moving configuration: 10 s window in
// 10 buckets, 2-sample hysteresis, 2 s dwell.
func testHealthCfg() HealthConfig {
	return HealthConfig{
		Window:     10,
		Buckets:    10,
		Hysteresis: 2,
		MinDwell:   2,
	}
}

// feedOK folds n successes at 1 s spacing starting at t0, each moving
// `bytes` in `lat` seconds. Returns the time after the last sample.
func feedOK(m *HealthMonitor, key string, t0 float64, n int, lat float64, bytes int64) float64 {
	for i := 0; i < n; i++ {
		m.fold(key, t0+float64(i), ClassOK, lat, bytes, false)
	}
	return t0 + float64(n)
}

func TestHealthHealthyUnderSteadySuccess(t *testing.T) {
	m := NewHealthMonitor(testHealthCfg())
	feedOK(m, "relay-a", 0, 8, 0.05, 64<<10)
	if got := m.State("relay-a"); got != HealthHealthy {
		t.Fatalf("state = %v, want healthy (score %.3f)", got, m.Score("relay-a"))
	}
	ph, ok := m.PathHealth("relay-a")
	if !ok {
		t.Fatal("path missing from snapshot")
	}
	if ph.Ok != 8 || ph.Failed != 0 {
		t.Fatalf("window counts ok=%d fail=%d, want 8/0", ph.Ok, ph.Failed)
	}
	if ph.SuccessRate != 1 {
		t.Fatalf("success rate = %v, want 1", ph.SuccessRate)
	}
	if ph.ThroughputEWMA <= 0 {
		t.Fatalf("throughput EWMA = %v, want > 0", ph.ThroughputEWMA)
	}
	if ph.LatencyP50 <= 0 || ph.LatencyP99 < ph.LatencyP50 {
		t.Fatalf("quantiles p50=%v p99=%v malformed", ph.LatencyP50, ph.LatencyP99)
	}
}

func TestHealthDegradesOnThroughputCollapseThenDown(t *testing.T) {
	m := NewHealthMonitor(testHealthCfg())
	// Establish a healthy baseline: fast transfers.
	now := feedOK(m, "p", 0, 6, 0.05, 1<<20)
	if m.State("p") != HealthHealthy {
		t.Fatalf("baseline state = %v, want healthy", m.State("p"))
	}
	// Throughput collapses ~100x but requests still succeed: the fast
	// EWMA dives, the slow one remembers the norm, and the score floors
	// near 0.5 — degraded, not down.
	for i := 0; i < 8; i++ {
		m.fold("p", now+float64(i), ClassOK, 5.0, 1<<20, false)
	}
	now += 8
	if got := m.State("p"); got != HealthDegraded {
		t.Fatalf("after collapse state = %v (score %.3f), want degraded", got, m.Score("p"))
	}
	// Then the path starts failing outright: availability drives the
	// score under DownScore.
	for i := 0; i < 10; i++ {
		m.fold("p", now+float64(i), ClassFailed, 0, 0, false)
	}
	if got := m.State("p"); got != HealthDown {
		t.Fatalf("after failures state = %v (score %.3f), want down", got, m.Score("p"))
	}
	// The committed trajectory is exactly healthy→degraded→down.
	ph, _ := m.PathHealth("p")
	if len(ph.History) != 2 ||
		ph.History[0].From != HealthHealthy || ph.History[0].To != HealthDegraded ||
		ph.History[1].From != HealthDegraded || ph.History[1].To != HealthDown {
		t.Fatalf("transition history = %+v, want healthy→degraded→down", ph.History)
	}
}

func TestHealthHysteresisDampsFlapping(t *testing.T) {
	cfg := testHealthCfg()
	cfg.Hysteresis = 3
	cfg.MinDwell = 10 // covers the failure burst below
	m := NewHealthMonitor(cfg)
	now := feedOK(m, "p", 0, 5, 0.05, 1<<20)
	// One isolated failure is not enough evaluations to transition.
	m.fold("p", now, ClassFailed, 0, 0, false)
	if got := m.State("p"); got != HealthHealthy {
		t.Fatalf("one failure flipped state to %v", got)
	}
	// A burst of failures inside the dwell period demands the transition
	// repeatedly but the dwell suppresses it — counted as damped flaps.
	for i := 1; i <= 4; i++ {
		m.fold("p", now+float64(i)*0.1, ClassFailed, 0, 0, false)
	}
	ph, _ := m.PathHealth("p")
	if ph.State != HealthHealthy {
		t.Fatalf("state flipped to %v inside dwell", ph.State)
	}
	if ph.FlapsSuppressed == 0 {
		t.Fatal("expected suppressed flaps during dwell, got none")
	}
	// Once the dwell expires the persistent signal commits.
	for i := 0; i < 4; i++ {
		m.fold("p", now+7+float64(i), ClassFailed, 0, 0, false)
	}
	if got := m.State("p"); got == HealthHealthy {
		t.Fatalf("state still healthy after sustained post-dwell failures (score %.3f)", m.Score("p"))
	}
}

func TestHealthStalenessDrivesScoreDown(t *testing.T) {
	cfg := testHealthCfg()
	cfg.MaxSuccessAge = 5
	clock := 0.0
	cfg.Clock = func() float64 { return clock }
	m := NewHealthMonitor(cfg)
	feedOK(m, "p", 0, 5, 0.05, 1<<20) // last success at t=4
	clock = 9                         // a full MaxSuccessAge after it
	if s := m.Score("p"); s > 0.3 {
		t.Fatalf("score after silence = %.3f, want near 0", s)
	}
	clock = 20 // evaluations outlast the dwell; state decays without events
	m.Score("p")
	clock = 25
	if got := m.State("p"); got != HealthDown {
		t.Fatalf("stale path state = %v, want down", got)
	}
}

func TestHealthCanceledIsNotASample(t *testing.T) {
	m := NewHealthMonitor(testHealthCfg())
	m.TransferAborted(Abort{Path: PathID{}, Time: 1, Class: ClassCanceled})
	if len(m.Snapshot().Paths) != 0 {
		t.Fatal("canceled abort created a path entry")
	}
}

func TestHealthObserverFeeding(t *testing.T) {
	m := NewHealthMonitor(testHealthCfg())
	via := "r1"
	p := PathID{Via: via}
	m.ProbeFinished(ProbeEnd{Path: p, Time: 1, Bytes: 50000, Duration: 0.1, Class: ClassOK})
	m.TransferFinished(TransferEnd{Path: p, Time: 2, Bytes: 1 << 20, Duration: 0.5, Class: ClassOK})
	m.RetryScheduled(Retry{Path: p, Time: 3, Attempt: 1})
	m.TransferAborted(Abort{Path: p, Time: 4, Class: ClassTimeout})
	ph, ok := m.PathHealth(p.Label())
	if !ok {
		t.Fatalf("no entry for %q", p.Label())
	}
	if ph.Ok != 2 || ph.Retries != 1 || ph.Failed != 1 {
		t.Fatalf("counts ok=%d retry=%d fail=%d, want 2/1/1", ph.Ok, ph.Retries, ph.Failed)
	}
}

func TestHealthWindowRotatesOldSamples(t *testing.T) {
	m := NewHealthMonitor(testHealthCfg()) // 10 s window
	feedOK(m, "p", 0, 5, 0.05, 1<<20)
	// 100 s later the old buckets have rotated out.
	m.fold("p", 100, ClassOK, 0.05, 1<<20, false)
	ph, _ := m.PathHealth("p")
	if ph.Ok != 1 {
		t.Fatalf("window ok = %d after rotation, want 1", ph.Ok)
	}
}

func TestHealthiestRanksByStateThenScore(t *testing.T) {
	m := NewHealthMonitor(testHealthCfg())
	feedOK(m, "good", 0, 8, 0.05, 1<<20)
	feedOK(m, "ok", 0, 8, 0.05, 1<<20)
	for i := 0; i < 3; i++ { // a few failures: lower score
		m.fold("ok", 8+float64(i), ClassFailed, 0, 0, false)
	}
	for i := 0; i < 10; i++ {
		m.fold("bad", float64(i), ClassFailed, 0, 0, false)
	}
	got := m.Healthiest(3)
	want := []string{"good", "ok", "bad"}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("Healthiest = %v, want %v", got, want)
	}
	if k2 := m.Healthiest(2); len(k2) != 2 {
		t.Fatalf("Healthiest(2) returned %d entries", len(k2))
	}
}

func TestHealthSnapshotJSONAndProm(t *testing.T) {
	slo := NewSLOTracker(SLOConfig{})
	cfg := testHealthCfg()
	cfg.SLO = slo
	m := NewHealthMonitor(cfg)
	feedOK(m, "direct", 0, 4, 0.05, 64<<10)
	m.fold("r1", 1, ClassFailed, 0, 0, false)

	s := m.Snapshot()
	var decoded HealthSnapshot
	if err := json.Unmarshal(s.JSON(), &decoded); err != nil {
		t.Fatalf("snapshot JSON round-trip: %v", err)
	}
	if len(decoded.Paths) != 2 {
		t.Fatalf("decoded %d paths, want 2", len(decoded.Paths))
	}
	if !strings.Contains(string(s.JSON()), `"state": "healthy"`) {
		t.Fatalf("JSON states not symbolic:\n%s", s.JSON())
	}

	p := NewProm()
	s.WriteProm(p, "test")
	m.SLO().Snapshot(-1).WriteProm(p, "test")
	page := p.Bytes()
	if err := LintProm(page); err != nil {
		t.Fatalf("prom lint: %v\n%s", err, page)
	}
	for _, want := range []string{"test_path_health{", "test_path_throughput_ewma_mbps{", "test_slo_availability_burn_fast"} {
		if !strings.Contains(string(page), want) {
			t.Fatalf("prom page missing %q:\n%s", want, page)
		}
	}

	// The tracker saw the folds: 4 ok + 1 fail.
	ss := slo.Snapshot(-1)
	if ss.Total != 5 || ss.FailedTotal != 1 {
		t.Fatalf("slo totals = %d/%d, want 5/1", ss.Total, ss.FailedTotal)
	}
}

func TestHealthStateStrings(t *testing.T) {
	for s, want := range map[HealthState]string{
		HealthUnknown: "unknown", HealthHealthy: "healthy",
		HealthDegraded: "degraded", HealthDown: "down",
	} {
		if s.String() != want {
			t.Fatalf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

func BenchmarkHealthFold(b *testing.B) {
	m := NewHealthMonitor(HealthConfig{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.fold("path", float64(i)*0.01, ClassOK, 0.05, 64<<10, false)
	}
}

func TestHealthOnTransitionCallback(t *testing.T) {
	cfg := testHealthCfg()
	var m *HealthMonitor
	type seen struct {
		path string
		tr   HealthTransition
	}
	var calls []seen
	cfg.OnTransition = func(path string, tr HealthTransition) {
		// The callback runs after the monitor lock is released, so
		// calling back into the monitor must not deadlock.
		_ = m.State(path)
		calls = append(calls, seen{path, tr})
	}
	m = NewHealthMonitor(cfg)

	// Unknown→healthy adoption is not a transition: no callback,
	// matching the committed history.
	now := feedOK(m, "p", 0, 6, 0.05, 1<<20)
	if len(calls) != 0 {
		t.Fatalf("first-state adoption notified: %+v", calls)
	}
	// Sustained failures commit healthy→degraded→down (or straight to
	// down); every committed transition must reach the callback in order.
	for i := 0; i < 12; i++ {
		m.fold("p", now+float64(i), ClassFailed, 0, 0, false)
	}
	ph, _ := m.PathHealth("p")
	if len(ph.History) == 0 {
		t.Fatal("no transitions committed")
	}
	if len(calls) != len(ph.History) {
		t.Fatalf("callback saw %d transitions, history has %d", len(calls), len(ph.History))
	}
	for i, c := range calls {
		if c.path != "p" || c.tr != ph.History[i] {
			t.Fatalf("callback[%d] = %+v, history[%d] = %+v", i, c, i, ph.History[i])
		}
	}
	last := calls[len(calls)-1]
	if last.tr.To != HealthDown {
		t.Fatalf("final notified transition = %+v, want →down", last.tr)
	}
}
