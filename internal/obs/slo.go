// SLO burn windows: rolling availability and latency objectives over the
// same bucket-ring machinery the health monitor uses, with fast/slow
// burn-rate counters in the style of multiwindow SLO alerting. A burn
// rate of 1.0 means the error budget is being consumed exactly as fast
// as the objective allows; sustained rates above ~2 on the fast window
// are the classic page condition.
package obs

import (
	"encoding/json"
	"sync"
)

// SLOConfig declares the objectives. The zero value gets defaults
// (99.5% availability, 95% of requests under 1 s, 5 m / 1 h windows).
type SLOConfig struct {
	// AvailabilityObjective is the target success fraction (default
	// 0.995).
	AvailabilityObjective float64
	// LatencyObjective is the target fraction of successes faster than
	// LatencyThreshold (default 0.95).
	LatencyObjective float64
	// LatencyThreshold in seconds (default 1.0).
	LatencyThreshold float64

	// FastWindow and SlowWindow are the burn-rate windows in seconds
	// (defaults 300 and 3600). FastBuckets/SlowBuckets set each ring's
	// granularity (defaults 30 and 60).
	FastWindow  float64
	SlowWindow  float64
	FastBuckets int
	SlowBuckets int

	// AlertBurn is the fast-window availability burn rate at or above
	// which OnFastBurn fires (default 2, the classic page threshold).
	AlertBurn float64
	// OnFastBurn, when set, is called after a failed fold pushes the
	// fast availability burn to AlertBurn or beyond. It runs outside the
	// tracker's lock but possibly inside a feeding HealthMonitor's fold,
	// so it must not call back into that monitor; the flight trigger
	// engine's FireBurn (which only touches its own state) is the
	// intended consumer. The path is the fold's path key ("" when fed
	// path-blind via ObserveAt).
	OnFastBurn func(path string, burn float64)
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.AvailabilityObjective <= 0 {
		c.AvailabilityObjective = 0.995
	}
	if c.LatencyObjective <= 0 {
		c.LatencyObjective = 0.95
	}
	// Objectives above 1 are impossible; clamp to exactly 1 ("every
	// request"), which the burn-rate math floors to a minimum error
	// budget instead of dividing by zero.
	if c.AvailabilityObjective > 1 {
		c.AvailabilityObjective = 1
	}
	if c.LatencyObjective > 1 {
		c.LatencyObjective = 1
	}
	if c.AlertBurn <= 0 {
		c.AlertBurn = 2
	}
	if c.LatencyThreshold <= 0 {
		c.LatencyThreshold = 1.0
	}
	if c.FastWindow <= 0 {
		c.FastWindow = 300
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = 3600
	}
	if c.FastBuckets <= 0 {
		c.FastBuckets = 30
	}
	if c.SlowBuckets <= 0 {
		c.SlowBuckets = 60
	}
	return c
}

// sloBucket is one time slice of good/bad counts for both objectives.
type sloBucket struct {
	num     int64
	total   int64
	failed  int64 // availability violations
	slow    int64 // latency violations (successes over threshold)
	latencN int64 // successes with a usable latency sample
}

// sloRing is one window's bucket ring.
type sloRing struct {
	width   float64
	buckets []sloBucket
}

func newSLORing(window float64, n int) sloRing {
	return sloRing{width: window / float64(n), buckets: make([]sloBucket, n)}
}

func (r *sloRing) bucket(t float64) *sloBucket {
	if t < 0 {
		t = 0
	}
	num := int64(t / r.width)
	b := &r.buckets[num%int64(len(r.buckets))]
	if b.num != num {
		*b = sloBucket{num: num}
	}
	return b
}

func (r *sloRing) sum(now float64) (total, failed, slow, latencN int64) {
	oldest := int64(now/r.width) - int64(len(r.buckets)) + 1
	for i := range r.buckets {
		b := &r.buckets[i]
		if b.num < oldest || b.total == 0 {
			continue
		}
		total += b.total
		failed += b.failed
		slow += b.slow
		latencN += b.latencN
	}
	return
}

// SLOTracker accumulates request outcomes against the configured
// objectives. Safe for concurrent use. Feed it directly with ObserveAt,
// or set it as a HealthMonitor's SLO so every health fold also lands
// here.
type SLOTracker struct {
	cfg SLOConfig

	mu      sync.Mutex
	fast    sloRing
	slow    sloRing
	hiwater float64

	// lifetime counters (never rotate out)
	total  int64
	failed int64
	slowN  int64
}

// NewSLOTracker returns a tracker with cfg's gaps filled by defaults.
func NewSLOTracker(cfg SLOConfig) *SLOTracker {
	cfg = cfg.withDefaults()
	return &SLOTracker{
		cfg:  cfg,
		fast: newSLORing(cfg.FastWindow, cfg.FastBuckets),
		slow: newSLORing(cfg.SlowWindow, cfg.SlowBuckets),
	}
}

// Config returns the tracker's effective configuration.
func (t *SLOTracker) Config() SLOConfig { return t.cfg }

// ObserveAt records one request outcome at time ts (seconds): ok is
// availability; latency (seconds, successes only; <= 0 means no sample)
// is checked against the threshold.
func (t *SLOTracker) ObserveAt(ts float64, ok bool, latency float64) {
	t.ObservePathAt("", ts, ok, latency)
}

// ObservePathAt is ObserveAt carrying the path key the outcome belongs
// to, so an OnFastBurn alert can name the offender. The tracker itself
// stays path-blind; the key only rides along to the callback.
func (t *SLOTracker) ObservePathAt(path string, ts float64, ok bool, latency float64) {
	t.mu.Lock()
	if ts > t.hiwater {
		t.hiwater = ts
	}
	for _, r := range []*sloRing{&t.fast, &t.slow} {
		b := r.bucket(ts)
		b.total++
		if !ok {
			b.failed++
		} else if latency > 0 {
			b.latencN++
			if latency > t.cfg.LatencyThreshold {
				b.slow++
			}
		}
	}
	t.total++
	if !ok {
		t.failed++
	} else if latency > 0 && latency > t.cfg.LatencyThreshold {
		t.slowN++
	}
	// Only a failure can push the burn over the line, so successes skip
	// the window sum entirely.
	var burn float64
	fire := false
	if !ok && t.cfg.OnFastBurn != nil {
		if total, failed, _, _ := t.fast.sum(t.hiwater); total > 0 {
			burn = (float64(failed) / float64(total)) / errBudget(t.cfg.AvailabilityObjective)
			fire = burn >= t.cfg.AlertBurn
		}
	}
	t.mu.Unlock()
	if fire {
		t.cfg.OnFastBurn(path, burn)
	}
}

// SLOWindow is one window's compliance view for one objective.
type SLOWindow struct {
	Window float64 `json:"window_s"`
	Total  int64   `json:"total"`
	Bad    int64   `json:"bad"`
	// Compliance is the good fraction (1 with no samples).
	Compliance float64 `json:"compliance"`
	// BurnRate is badFraction / (1 − objective): 1.0 burns the error
	// budget exactly at the allowed rate, 0 means no burn.
	BurnRate float64 `json:"burn_rate"`
}

// SLOSnapshot is the tracker's full state at one instant, the
// /debug/slo payload.
type SLOSnapshot struct {
	Time float64 `json:"time"`

	AvailabilityObjective float64 `json:"availability_objective"`
	LatencyObjective      float64 `json:"latency_objective"`
	LatencyThreshold      float64 `json:"latency_threshold_s"`

	AvailabilityFast SLOWindow `json:"availability_fast"`
	AvailabilitySlow SLOWindow `json:"availability_slow"`
	LatencyFast      SLOWindow `json:"latency_fast"`
	LatencySlow      SLOWindow `json:"latency_slow"`

	// Lifetime counters, for burn accounting across window rotation.
	Total       int64 `json:"total"`
	FailedTotal int64 `json:"failed_total"`
	SlowTotal   int64 `json:"slow_total"`
}

// JSON renders the snapshot as indented JSON. Built from plain fields,
// so marshaling cannot fail.
func (s SLOSnapshot) JSON() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		panic("obs: slo snapshot marshal: " + err.Error())
	}
	return b
}

// errBudget is the burn-rate denominator 1 − objective, floored so an
// objective of exactly 1.0 ("every request must succeed") yields a huge
// finite burn per failure instead of ±Inf poisoning the gauge and every
// threshold comparison downstream.
func errBudget(objective float64) float64 {
	den := 1 - objective
	if den < 1e-9 {
		den = 1e-9
	}
	return den
}

func sloWindow(window float64, total, bad int64, objective float64) SLOWindow {
	w := SLOWindow{Window: window, Total: total, Bad: bad, Compliance: 1}
	if total > 0 {
		w.Compliance = 1 - float64(bad)/float64(total)
		w.BurnRate = (float64(bad) / float64(total)) / errBudget(objective)
	}
	return w
}

// Snapshot captures both objectives over both windows at time now
// (pass a negative now to use the tracker's high-water event time).
func (t *SLOTracker) Snapshot(now float64) SLOSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	if now < 0 {
		now = t.hiwater
	}
	s := SLOSnapshot{
		Time:                  now,
		AvailabilityObjective: t.cfg.AvailabilityObjective,
		LatencyObjective:      t.cfg.LatencyObjective,
		LatencyThreshold:      t.cfg.LatencyThreshold,
		Total:                 t.total,
		FailedTotal:           t.failed,
		SlowTotal:             t.slowN,
	}
	ftot, ffail, fslow, flat := t.fast.sum(now)
	stot, sfail, sslow, slat := t.slow.sum(now)
	s.AvailabilityFast = sloWindow(t.cfg.FastWindow, ftot, ffail, t.cfg.AvailabilityObjective)
	s.AvailabilitySlow = sloWindow(t.cfg.SlowWindow, stot, sfail, t.cfg.AvailabilityObjective)
	s.LatencyFast = sloWindow(t.cfg.FastWindow, flat, fslow, t.cfg.LatencyObjective)
	s.LatencySlow = sloWindow(t.cfg.SlowWindow, slat, sslow, t.cfg.LatencyObjective)
	return s
}

// WriteProm renders the SLO view as Prometheus families under prefix:
// burn-rate and compliance gauges per objective/window plus the
// lifetime counters.
func (s SLOSnapshot) WriteProm(p *Prom, prefix string) {
	p.Gauge(prefix+"_slo_availability_burn_fast", "Availability burn rate over the fast window.", s.AvailabilityFast.BurnRate)
	p.Gauge(prefix+"_slo_availability_burn_slow", "Availability burn rate over the slow window.", s.AvailabilitySlow.BurnRate)
	p.Gauge(prefix+"_slo_latency_burn_fast", "Latency burn rate over the fast window.", s.LatencyFast.BurnRate)
	p.Gauge(prefix+"_slo_latency_burn_slow", "Latency burn rate over the slow window.", s.LatencySlow.BurnRate)
	p.Gauge(prefix+"_slo_availability_compliance_fast", "Availability compliance over the fast window.", s.AvailabilityFast.Compliance)
	p.Gauge(prefix+"_slo_latency_compliance_fast", "Latency compliance over the fast window.", s.LatencyFast.Compliance)
	p.Counter(prefix+"_slo_requests_total", "Requests folded into the SLO tracker.", float64(s.Total))
	p.Counter(prefix+"_slo_failed_total", "Availability violations (failed requests).", float64(s.FailedTotal))
	p.Counter(prefix+"_slo_slow_total", "Latency violations (successes over threshold).", float64(s.SlowTotal))
}
