package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestAcceptsOpenMetrics(t *testing.T) {
	cases := []struct {
		accept string
		want   bool
	}{
		{"", false},
		{"text/plain", false},
		{"application/openmetrics-text", true},
		{"application/openmetrics-text; version=1.0.0; charset=utf-8", true},
		{"text/plain;q=0.5, application/openmetrics-text;version=1.0.0;q=0.9", true},
		{" application/openmetrics-text , text/plain", true},
		{"application/openmetrics-text+weird", false},
		{"*/*", false},
	}
	for _, c := range cases {
		if got := AcceptsOpenMetrics(c.accept); got != c.want {
			t.Fatalf("AcceptsOpenMetrics(%q) = %v, want %v", c.accept, got, c.want)
		}
	}
}

// renderBoth builds the same exposition through the classic and the
// OpenMetrics builders.
func renderBoth(fill func(p *Prom)) (classic, om []byte) {
	pc, po := NewProm(), NewOpenMetricsProm()
	fill(pc)
	fill(po)
	return pc.Bytes(), po.Bytes()
}

// stripOM removes exemplar suffixes and the # EOF terminator, the only
// two things the OpenMetrics flavor may add.
func stripOM(b []byte) string {
	var out strings.Builder
	body := strings.TrimSuffix(strings.TrimSuffix(string(b), "# EOF\n"), "\n")
	for _, line := range strings.Split(body, "\n") {
		if i := strings.Index(line, " # "); i >= 0 && !strings.HasPrefix(line, "#") {
			line = line[:i]
		}
		out.WriteString(line)
		out.WriteByte('\n')
	}
	return strings.TrimSuffix(out.String(), "\n")
}

func TestOpenMetricsIsClassicPlusAnnotations(t *testing.T) {
	var rec LatencyRecorder
	for i := 0; i < 50; i++ {
		rec.ObserveTrace(time.Duration(i)*37*time.Millisecond, NewTraceID())
	}
	snap := rec.Snapshot()
	classic, om := renderBoth(func(p *Prom) {
		p.Counter("x_requests_total", "Requests.", 5)
		p.Gauge("x_depth", "Depth.", 2)
		p.LabeledCounter("x_by_route_total", "By route.", "route", map[string]float64{"a": 1, "b": 2})
		p.Histogram("x_latency_seconds", "Latency.", snap)
	})
	if err := LintProm(classic); err != nil {
		t.Fatalf("classic lint: %v", err)
	}
	if err := LintOpenMetrics(om); err != nil {
		t.Fatalf("openmetrics lint: %v", err)
	}
	if got := stripOM(om); got != strings.TrimSuffix(string(classic), "\n") {
		t.Fatalf("OM minus annotations differs from classic:\n--- om-stripped ---\n%s\n--- classic ---\n%s", got, classic)
	}
	if !strings.Contains(string(om), ` # {trace_id="`) {
		t.Fatal("OM render of a traced histogram carries no exemplar")
	}
	if strings.Contains(string(classic), " # {") {
		t.Fatal("classic render leaked exemplar annotations")
	}
	if !strings.HasSuffix(string(om), "# EOF\n") {
		t.Fatal("OM render missing # EOF")
	}
}

func TestContentTypesByBuilder(t *testing.T) {
	if ct := NewProm().ContentType(); ct != PromContentType {
		t.Fatalf("classic content type %q", ct)
	}
	if ct := NewOpenMetricsProm().ContentType(); ct != OpenMetricsContentType {
		t.Fatalf("OM content type %q", ct)
	}
}

func TestExemplarRendersOnMatchingBucket(t *testing.T) {
	var rec LatencyRecorder
	slow := NewTraceID()
	for i := 0; i < 200; i++ {
		rec.Observe(100 * time.Millisecond)
	}
	rec.ObserveTrace(15*time.Second, slow) // lands in a high bucket alone
	p := NewOpenMetricsProm()
	p.Histogram("t_latency_seconds", "T.", rec.Snapshot())
	out := string(p.Bytes())
	if err := LintOpenMetrics(p.Bytes()); err != nil {
		t.Fatalf("lint: %v", err)
	}
	var exLine string
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, slow.String()) {
			exLine = line
		}
	}
	if exLine == "" {
		t.Fatalf("exemplar trace %s not rendered:\n%s", slow, out)
	}
	// The exemplar must sit on the first bucket whose range covers 15s
	// (le="16" with the 20-bucket coarsening of [0,20)x200), value 15.
	if !strings.Contains(exLine, `le="16"`) || !strings.Contains(exLine, `} 15 `) {
		t.Fatalf("exemplar on wrong bucket or value: %q", exLine)
	}
}

func TestHistogramSumExactFromStripedRecorder(t *testing.T) {
	// The striped recorder keeps an exact running sum; the rendered _sum
	// and a parse round-trip must reproduce it bit-for-bit. Quarter
	// seconds are exactly representable, so no tolerance is needed.
	var rec LatencyRecorder
	durations := []time.Duration{
		250 * time.Millisecond,
		500 * time.Millisecond,
		time.Second,
		750 * time.Millisecond,
		1250 * time.Millisecond,
	}
	want := 0.0
	for _, d := range durations {
		rec.Observe(d)
		want += d.Seconds()
	}
	snap := rec.Snapshot()
	if snap.Sum != want {
		t.Fatalf("snapshot sum %v, want exactly %v", snap.Sum, want)
	}
	p := NewProm()
	p.Histogram("t_latency_seconds", "T.", snap)
	if !strings.Contains(string(p.Bytes()), "t_latency_seconds_sum 3.75\n") {
		t.Fatalf("rendered _sum not exact:\n%s", p.Bytes())
	}
	fams, err := ParseProm(p.Bytes())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	h, err := fams["t_latency_seconds"].Histogram()
	if err != nil {
		t.Fatalf("reconstruct: %v", err)
	}
	if h.Sum != want {
		t.Fatalf("round-tripped sum %v, want exactly %v", h.Sum, want)
	}
	if h.Total != int64(len(durations)) {
		t.Fatalf("round-tripped total %d, want %d", h.Total, len(durations))
	}
}

func TestHistogramEdgesRuntimeShape(t *testing.T) {
	// The runtime/metrics shape: first and last edges infinite.
	edges := []float64{math.Inf(-1), 0.001, 0.002, 0.004, math.Inf(1)}
	counts := []uint64{1, 10, 5, 2}
	p := NewProm()
	p.HistogramEdges("t_pause_seconds", "T.", edges, counts)
	out := string(p.Bytes())
	if err := LintProm(p.Bytes()); err != nil {
		t.Fatalf("lint: %v\n%s", err, out)
	}
	if !strings.Contains(out, `t_pause_seconds_bucket{le="+Inf"} 18`) {
		t.Fatalf("+Inf bucket must carry the full count:\n%s", out)
	}
	if !strings.Contains(out, "t_pause_seconds_count 18\n") {
		t.Fatalf("count must be 18:\n%s", out)
	}
	// No explicit bucket for the infinite upper edge.
	if strings.Contains(out, `le="Inf"`) || strings.Contains(out, `le="-Inf"`) {
		t.Fatalf("infinite edges leaked into explicit buckets:\n%s", out)
	}
}

func TestHistogramEdgesEmptyAndMismatched(t *testing.T) {
	for _, c := range []struct {
		edges  []float64
		counts []uint64
	}{
		{nil, nil},
		{[]float64{0, 1}, nil},
		{[]float64{0, 1}, []uint64{1, 2}}, // len mismatch
	} {
		p := NewProm()
		p.HistogramEdges("t_x_seconds", "T.", c.edges, c.counts)
		if err := LintProm(p.Bytes()); err != nil {
			t.Fatalf("degenerate input %v/%v rendered invalid exposition: %v", c.edges, c.counts, err)
		}
		if !strings.Contains(string(p.Bytes()), "t_x_seconds_count 0\n") {
			t.Fatalf("degenerate input should render an empty histogram:\n%s", p.Bytes())
		}
	}
}

func TestWriteRuntimePromFamiliesAndLint(t *testing.T) {
	p := NewProm()
	WriteRuntimeProm(p)
	out := string(p.Bytes())
	if err := LintProm(p.Bytes()); err != nil {
		t.Fatalf("runtime families fail lint: %v", err)
	}
	for _, fam := range []string{
		"go_goroutines", "go_gomaxprocs", "go_memstats_heap_objects_bytes",
		"go_memstats_total_bytes", "go_gc_cycles_total",
		"go_gc_pause_seconds", "go_sched_latency_seconds",
	} {
		if !strings.Contains(out, "# TYPE "+fam+" ") {
			t.Fatalf("runtime exposition missing %s:\n%s", fam, out)
		}
	}
	// OM flavor stays lintable too (runtime histograms carry no
	// exemplars, but the payload shape must hold).
	po := NewOpenMetricsProm()
	WriteRuntimeProm(po)
	if err := LintOpenMetrics(po.Bytes()); err != nil {
		t.Fatalf("runtime families fail OM lint: %v", err)
	}
}
