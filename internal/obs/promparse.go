// A real parser for the text exposition format, built on the same
// low-level helpers LintProm uses. The fleet aggregator scrapes every
// relay's /metrics and needs decoded families back — names, labels,
// values, and reconstructed histograms it can merge across relays —
// not just a validity verdict. The parser accepts both flavors this
// repo emits: classic text and the OpenMetrics variant (exemplar
// suffixes and the # EOF marker are tolerated and skipped).

package obs

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// PromSample is one decoded sample line.
type PromSample struct {
	Name   string            // full sample name, including _bucket/_sum/_count suffixes
	Labels map[string]string // nil when the sample has no labels
	Value  float64
}

// PromFamily is one metric family: its TYPE, HELP, and samples in
// exposition order. Histogram families own their _bucket/_sum/_count
// samples.
type PromFamily struct {
	Name    string
	Type    string
	Help    string
	Samples []PromSample
}

// ParseProm decodes a text exposition into families keyed by family
// name. Unknown lines are errors — the input is expected to come from
// this package's own renderer (or a peer daemon running it), so
// strictness is a feature. Exemplar suffixes and the OpenMetrics # EOF
// terminator are accepted and ignored.
func ParseProm(b []byte) (map[string]*PromFamily, error) {
	fams := make(map[string]*PromFamily)
	for ln, line := range strings.Split(string(b), "\n") {
		lineNo := ln + 1
		if line == "" || line == "# EOF" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, err := promComment(line)
			if err != nil {
				return nil, fmt.Errorf("prom parse: line %d: %v", lineNo, err)
			}
			f := fams[name]
			if f == nil {
				f = &PromFamily{Name: name}
				fams[name] = f
			}
			if kind == "TYPE" {
				f.Type = rest
			} else {
				f.Help = rest
			}
			continue
		}
		if i := strings.Index(line, " # "); i >= 0 {
			line = line[:i] // drop exemplar annotation
		}
		name, labels, value, err := promSample(line)
		if err != nil {
			return nil, fmt.Errorf("prom parse: line %d: %v", lineNo, err)
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suffix)
			if f, ok := fams[trimmed]; ok && f.Type == "histogram" {
				family = trimmed
				break
			}
		}
		f := fams[family]
		if f == nil {
			return nil, fmt.Errorf("prom parse: line %d: sample %q has no TYPE line", lineNo, name)
		}
		s := PromSample{Name: name, Value: value}
		if labels != "" {
			s.Labels = make(map[string]string)
			for _, pair := range splitLabels(labels) {
				k, v, ok := strings.Cut(pair, "=")
				if !ok || len(v) < 2 {
					return nil, fmt.Errorf("prom parse: line %d: bad label %q", lineNo, pair)
				}
				s.Labels[k] = promUnquoteLabel(v[1 : len(v)-1])
			}
		}
		f.Samples = append(f.Samples, s)
	}
	return fams, nil
}

// promUnquoteLabel reverses promLabel's escaping.
func promUnquoteLabel(v string) string {
	if !strings.ContainsRune(v, '\\') {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		if v[i] == '\\' && i+1 < len(v) {
			i++
			switch v[i] {
			case 'n':
				b.WriteByte('\n')
			default:
				b.WriteByte(v[i])
			}
			continue
		}
		b.WriteByte(v[i])
	}
	return b.String()
}

// Value returns the family's single unlabeled sample value. False when
// the family is empty, labeled, or has several samples.
func (f *PromFamily) Value() (float64, bool) {
	if f == nil || len(f.Samples) != 1 || f.Samples[0].Labels != nil {
		return 0, false
	}
	return f.Samples[0].Value, true
}

// Histogram reconstructs a HistogramSnapshot from a parsed histogram
// family's _bucket/_sum/_count samples. The renderer emits uniform-
// width buckets, so the reconstruction checks edge uniformity and
// rebuilds the bin array at scrape resolution: Lo is the first edge
// minus the width, counts above the last finite edge become Overflow,
// and Underflow is zero (the renderer folds it into every cumulative
// bucket, so it is indistinguishable from the first bin). Snapshots
// reconstructed from scrapes of the same renderer share geometry and
// merge exactly.
func (f *PromFamily) Histogram() (HistogramSnapshot, error) {
	var snap HistogramSnapshot
	if f == nil || f.Type != "histogram" {
		return snap, fmt.Errorf("prom parse: not a histogram family")
	}
	type bucket struct {
		le  float64
		cum float64
	}
	var buckets []bucket
	var total float64
	haveInf := false
	for _, s := range f.Samples {
		switch {
		case s.Name == f.Name+"_sum":
			snap.Sum = s.Value
		case s.Name == f.Name+"_count":
			total = s.Value
		case s.Name == f.Name+"_bucket":
			le, ok := s.Labels["le"]
			if !ok {
				return snap, fmt.Errorf("prom parse: %s bucket without le", f.Name)
			}
			if le == "+Inf" {
				haveInf = true
				if total == 0 {
					total = s.Value
				}
				continue
			}
			edge, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return snap, fmt.Errorf("prom parse: %s bad le %q", f.Name, le)
			}
			buckets = append(buckets, bucket{le: edge, cum: s.Value})
		}
	}
	if !haveInf {
		return snap, fmt.Errorf("prom parse: %s has no +Inf bucket", f.Name)
	}
	snap.Total = int64(total)
	if len(buckets) == 0 {
		return snap, nil
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i].le <= buckets[i-1].le {
			return snap, fmt.Errorf("prom parse: %s bucket edges not increasing", f.Name)
		}
	}
	width := buckets[0].le
	if len(buckets) > 1 {
		width = buckets[1].le - buckets[0].le
		for i := 1; i < len(buckets); i++ {
			w := buckets[i].le - buckets[i-1].le
			if math.Abs(w-width) > 1e-9*math.Max(math.Abs(w), math.Abs(width)) {
				return snap, fmt.Errorf("prom parse: %s buckets not uniform width", f.Name)
			}
		}
	}
	snap.Lo = buckets[0].le - width
	snap.Hi = buckets[len(buckets)-1].le
	snap.Bins = make([]int64, len(buckets))
	prev := 0.0
	for i, b := range buckets {
		snap.Bins[i] = int64(b.cum - prev)
		prev = b.cum
	}
	snap.Overflow = int64(total - prev)
	snap.P50 = snap.Quantile(0.50)
	snap.P90 = snap.Quantile(0.90)
	snap.P99 = snap.Quantile(0.99)
	return snap, nil
}

// MergeHistogramSnapshots adds o into h bin-by-bin. Both must share
// geometry (same Lo, Hi, bin count) — which scrape-reconstructed
// snapshots from identical renderers do. Quantiles are recomputed.
func MergeHistogramSnapshots(h *HistogramSnapshot, o HistogramSnapshot) error {
	if len(h.Bins) == 0 && h.Total == 0 {
		*h = o
		// Copy the bins: later merges mutate h.Bins in place, and sharing
		// o's backing array would corrupt the caller's source snapshot.
		h.Bins = append([]int64(nil), o.Bins...)
		h.Exemplars = nil
		return nil
	}
	if o.Total == 0 && len(o.Bins) == 0 {
		return nil
	}
	if h.Lo != o.Lo || h.Hi != o.Hi || len(h.Bins) != len(o.Bins) {
		return fmt.Errorf("merge histogram: geometry mismatch ([%g,%g]x%d vs [%g,%g]x%d)",
			h.Lo, h.Hi, len(h.Bins), o.Lo, o.Hi, len(o.Bins))
	}
	for i := range h.Bins {
		h.Bins[i] += o.Bins[i]
	}
	h.Underflow += o.Underflow
	h.Overflow += o.Overflow
	h.Total += o.Total
	h.Sum += o.Sum
	h.P50 = h.Quantile(0.50)
	h.P90 = h.Quantile(0.90)
	h.P99 = h.Quantile(0.99)
	return nil
}
