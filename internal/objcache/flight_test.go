package objcache

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSingleflightCollapsesConcurrentMisses(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20})
	const waiters = 8

	fl, leader := c.StartFlight("o", 0, 100)
	if !leader {
		t.Fatal("first StartFlight is not the leader")
	}
	for i := 0; i < 3; i++ {
		if f2, l2 := c.StartFlight("o", 0, 100); l2 || f2 != fl {
			t.Fatal("concurrent StartFlight did not join the open flight")
		}
	}
	// A different range is a different flight.
	other, l := c.StartFlight("o", 100, 100)
	if !l {
		t.Fatal("distinct range joined the wrong flight")
	}
	other.Complete(nil, errors.New("unused"))

	var served int32
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			data, err := fl.Wait(context.Background())
			if err == nil && bytes.Equal(data, pattern(0, 100)) {
				atomic.AddInt32(&served, 1)
			}
		}()
	}
	// Wait for every waiter to be parked before completing.
	for {
		if c.Stats().FlightWaiters == waiters {
			break
		}
		time.Sleep(time.Millisecond)
	}
	fl.Complete(pattern(0, 100), nil)
	wg.Wait()

	if served != waiters {
		t.Fatalf("%d of %d waiters served", served, waiters)
	}
	s := c.Stats()
	if s.SharedFills != waiters || s.ActiveFlights != 0 {
		t.Fatalf("flight counters: %+v", s)
	}
	// The fill landed in the cache for everyone after.
	wantRange(t, c, "o", 0, 100)
}

func TestFlightFailureReleasesWaiters(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20})
	fl, _ := c.StartFlight("o", 0, 100)
	boom := errors.New("origin down")

	errc := make(chan error, 1)
	go func() {
		_, err := fl.Wait(context.Background())
		errc <- err
	}()
	for c.Stats().FlightWaiters != 1 {
		time.Sleep(time.Millisecond)
	}
	fl.Complete(nil, boom)
	if err := <-errc; !errors.Is(err, boom) {
		t.Fatalf("waiter error = %v, want the leader's", err)
	}
	wantMiss(t, c, "o", 0, 100)
	// The flight slot is free again: the next miss leads a fresh fill.
	if _, leader := c.StartFlight("o", 0, 100); !leader {
		t.Fatal("failed flight still registered")
	}
}

func TestWaiterCanceledWhileFillContinues(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20})
	fl, _ := c.StartFlight("o", 0, 100)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := fl.Wait(ctx)
		errc <- err
	}()
	for c.Stats().FlightWaiters != 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter returned %v", err)
	}

	// The fill is undisturbed: the leader completes afterwards and the
	// cache still warms for the next request.
	fl.Complete(pattern(0, 100), nil)
	wantRange(t, c, "o", 0, 100)
	s := c.Stats()
	if s.CanceledWaits != 1 || s.FlightWaiters != 0 {
		t.Fatalf("cancel counters: %+v", s)
	}
}
