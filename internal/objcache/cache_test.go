package objcache

import (
	"bytes"
	"testing"
	"time"
)

// pattern fills a deterministic byte pattern for [off, off+n) so tests
// can check that coalescing stitched ranges together correctly.
func pattern(off, n int64) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte((off + int64(i)) * 131)
	}
	return p
}

func wantRange(t *testing.T, c *Cache, key string, off, n int64) {
	t.Helper()
	got, ok := c.Get(key, off, n)
	if !ok {
		t.Fatalf("Get(%q, %d, %d) missed", key, off, n)
	}
	if !bytes.Equal(got, pattern(off, n)) {
		t.Fatalf("Get(%q, %d, %d) returned wrong bytes", key, off, n)
	}
}

func wantMiss(t *testing.T, c *Cache, key string, off, n int64) {
	t.Helper()
	if _, ok := c.Get(key, off, n); ok {
		t.Fatalf("Get(%q, %d, %d) unexpectedly hit", key, off, n)
	}
}

func TestAdjacentSpansMerge(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20})
	c.Put("o", 0, pattern(0, 100))
	c.Put("o", 100, pattern(100, 100)) // exactly adjacent
	if s := c.Stats(); s.Spans != 1 {
		t.Fatalf("adjacent fills left %d spans, want 1 coalesced", s.Spans)
	}
	// A read across the former boundary must be served from one span.
	wantRange(t, c, "o", 50, 100)
	wantRange(t, c, "o", 0, 200)
}

func TestOverlappingFillsCoalesce(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20})
	c.Put("o", 0, pattern(0, 150))
	c.Put("o", 100, pattern(100, 150)) // overlaps [100,150)
	if s := c.Stats(); s.Spans != 1 || s.BytesCached != 250 {
		t.Fatalf("overlap left spans=%d bytes=%d, want 1 span of 250", s.Spans, s.BytesCached)
	}
	wantRange(t, c, "o", 0, 250)

	// Fresh bytes win where fills disagree: refill [50,100) with
	// different content and expect the new bytes back.
	fresh := bytes.Repeat([]byte{0xAB}, 50)
	c.Put("o", 50, fresh)
	got, ok := c.Get("o", 50, 50)
	if !ok || !bytes.Equal(got, fresh) {
		t.Fatalf("refilled range not served fresh: ok=%v", ok)
	}
}

func TestGapStaysSplit(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20})
	c.Put("o", 0, pattern(0, 100))
	c.Put("o", 200, pattern(200, 100)) // hole at [100,200)
	if s := c.Stats(); s.Spans != 2 {
		t.Fatalf("disjoint fills coalesced to %d spans", s.Spans)
	}
	wantMiss(t, c, "o", 50, 100) // spans the hole
	wantRange(t, c, "o", 200, 100)

	// Filling the hole collapses all three into one span.
	c.Put("o", 100, pattern(100, 100))
	if s := c.Stats(); s.Spans != 1 {
		t.Fatalf("hole fill left %d spans", s.Spans)
	}
	wantRange(t, c, "o", 0, 300)
}

func TestLRUEvictionByBytes(t *testing.T) {
	c := New(Config{MaxBytes: 250})
	c.Put("a", 0, pattern(0, 100))
	c.Put("b", 0, pattern(0, 100))
	wantRange(t, c, "a", 0, 100) // touch a: b is now LRU
	c.Put("c", 0, pattern(0, 100))

	if s := c.Stats(); s.BytesCached > 250 {
		t.Fatalf("over budget after eviction: %d", s.BytesCached)
	}
	wantMiss(t, c, "b", 0, 100) // the least recently used went first
	wantRange(t, c, "a", 0, 100)
	wantRange(t, c, "c", 0, 100)
	if s := c.Stats(); s.Evictions == 0 || s.EvictedBytes != 100 {
		t.Fatalf("eviction counters: %+v", s)
	}
}

func TestEvictionMidRead(t *testing.T) {
	c := New(Config{MaxBytes: 200})
	c.Put("a", 0, pattern(0, 150))
	got, ok := c.Get("a", 0, 150)
	if !ok {
		t.Fatal("miss on fresh fill")
	}
	// Evict "a" while the reader still holds the slice.
	c.Put("b", 0, pattern(0, 150))
	wantMiss(t, c, "a", 0, 150)
	// The reader's view is unaffected: the buffer outlives the entry.
	if !bytes.Equal(got, pattern(0, 150)) {
		t.Fatal("evicted span's bytes changed under a live reader")
	}
}

func TestTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	c := New(Config{MaxBytes: 1 << 20, TTL: time.Minute, Clock: func() time.Time { return now }})
	c.Put("o", 0, pattern(0, 100))
	wantRange(t, c, "o", 0, 100)

	now = now.Add(2 * time.Minute)
	wantMiss(t, c, "o", 0, 100)
	s := c.Stats()
	if s.Expirations != 1 || s.BytesCached != 0 {
		t.Fatalf("expiry counters: %+v", s)
	}
}

func TestVerifyOnServeDropsCorruptSpan(t *testing.T) {
	calls := 0
	good := true
	c := New(Config{
		MaxBytes: 1 << 20,
		Verify: func(key string, off int64, data []byte) bool {
			calls++
			return good
		},
	})
	c.Put("o", 0, pattern(0, 100))
	wantRange(t, c, "o", 0, 100)
	if calls != 1 {
		t.Fatalf("verify ran %d times, want 1", calls)
	}

	// Simulate bit rot: the verifier now rejects the span. The lookup
	// must degrade to a miss and the span must be gone.
	good = false
	wantMiss(t, c, "o", 0, 50)
	good = true
	wantMiss(t, c, "o", 0, 50) // really gone, not just skipped once
	s := c.Stats()
	if s.VerifyFailures != 1 || s.Spans != 0 {
		t.Fatalf("corrupt span not dropped: %+v", s)
	}
}

func TestOversizedRunKeepsFreshFill(t *testing.T) {
	c := New(Config{MaxBytes: 250})
	c.Put("o", 0, pattern(0, 150))
	// Adjacent fill whose coalesced run (300) exceeds the whole cache:
	// the fresh fill survives alone.
	c.Put("o", 150, pattern(150, 150))
	wantRange(t, c, "o", 150, 150)
	wantMiss(t, c, "o", 0, 150)
	if s := c.Stats(); s.BytesCached != 150 {
		t.Fatalf("bytes after capped merge: %d", s.BytesCached)
	}
}

func TestPutLargerThanCacheIgnored(t *testing.T) {
	c := New(Config{MaxBytes: 100})
	c.Put("o", 0, pattern(0, 200))
	if s := c.Stats(); s.BytesCached != 0 || s.Fills != 0 {
		t.Fatalf("oversized fill was cached: %+v", s)
	}
}

func TestSizeRecording(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20})
	if _, ok := c.Size("o"); ok {
		t.Fatal("size known before any fill")
	}
	c.SetSize("o", 12345)
	if sz, ok := c.Size("o"); !ok || sz != 12345 {
		t.Fatalf("Size = %d, %v", sz, ok)
	}
	c.SetSize("o", -1) // invalid, ignored
	if sz, _ := c.Size("o"); sz != 12345 {
		t.Fatalf("negative SetSize overwrote: %d", sz)
	}
}

func TestStatsAndWarmth(t *testing.T) {
	c := New(Config{MaxBytes: 200})
	if w := c.Stats().Warmth(); w != 0 {
		t.Fatalf("cold cache warmth = %v", w)
	}
	c.Put("o", 0, pattern(0, 200))
	wantRange(t, c, "o", 0, 200)
	s := c.Stats()
	if s.HitRate() != 1 {
		t.Fatalf("hit rate = %v", s.HitRate())
	}
	if w := s.Warmth(); w != 1 {
		t.Fatalf("full cache with perfect hit rate: warmth = %v, want 1", w)
	}
	wantMiss(t, c, "x", 0, 10)
	if w := c.Stats().Warmth(); w <= 0 || w >= 1 {
		t.Fatalf("mixed warmth out of (0,1): %v", w)
	}
}
