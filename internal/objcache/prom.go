package objcache

import "repro/internal/obs"

// WriteProm appends the cache's metric families to a Prometheus scrape,
// namespaced by prefix ("relay" → relay_cache_hits_total, ...). The
// split mirrors the snapshot itself: monotonic counters for traffic and
// lifecycle events, gauges for the instantaneous state.
func (s Stats) WriteProm(p *obs.Prom, prefix string) {
	pre := prefix + "_cache_"
	p.Counter(pre+"hits_total", "Lookups fully served from cached spans.", float64(s.Hits))
	p.Counter(pre+"misses_total", "Lookups not covered by cached spans.", float64(s.Misses))
	p.Counter(pre+"hit_bytes_total", "Bytes served from cached spans.", float64(s.HitBytes))
	p.Counter(pre+"fills_total", "Ranges inserted into the cache.", float64(s.Fills))
	p.Counter(pre+"fill_bytes_total", "Bytes inserted into the cache.", float64(s.FillBytes))
	p.Counter(pre+"shared_fills_total", "Waiters served by another request's in-flight fill.", float64(s.SharedFills))
	p.Counter(pre+"evictions_total", "Objects evicted by capacity pressure.", float64(s.Evictions))
	p.Counter(pre+"evicted_bytes_total", "Bytes evicted by capacity pressure.", float64(s.EvictedBytes))
	p.Counter(pre+"expirations_total", "Objects expired by TTL.", float64(s.Expirations))
	p.Counter(pre+"verify_failures_total", "Cached spans dropped by serve-time verification.", float64(s.VerifyFailures))
	p.Counter(pre+"canceled_waits_total", "Flight waiters canceled while the fill continued.", float64(s.CanceledWaits))
	p.Gauge(pre+"capacity_bytes", "Configured cache capacity.", float64(s.CapacityBytes))
	p.Gauge(pre+"bytes", "Bytes currently cached.", float64(s.BytesCached))
	p.Gauge(pre+"objects", "Objects currently cached.", float64(s.Objects))
	p.Gauge(pre+"spans", "Contiguous spans currently cached.", float64(s.Spans))
	p.Gauge(pre+"active_flights", "Fills currently in flight.", float64(s.ActiveFlights))
	p.Gauge(pre+"flight_waiters", "Requests currently parked on another's fill.", float64(s.FlightWaiters))
	p.Gauge(pre+"warmth", "Cache warmth score in [0,1]: fullness and hit rate combined.", s.Warmth())
}
