// Package objcache is the bounded, range-aware object cache behind the
// relay caching tier (and, optionally, the client transport): byte
// ranges of named objects are stored as coalesced contiguous spans, the
// whole cache is bounded by total bytes with least-recently-used
// objects evicted first, entries can expire on a TTL, and concurrent
// misses for the same object/range collapse into a single upstream fill
// through the singleflight Flight API.
//
// The cache never hands out mutable state: span buffers are written
// once at insertion (coalescing copies into a fresh buffer) and only
// ever dropped afterwards, so a slice returned by Get stays valid and
// immutable even if the span is evicted mid-read — the reader keeps the
// buffer alive, the cache merely forgets it.
//
// Because cached content may sit in memory for a long time, serving can
// be paranoid: an optional Verify hook re-checks every span before Get
// returns it, and a span that fails verification is dropped and
// reported as a miss, so one flipped bit degrades to a refetch instead
// of propagating corruption.
package objcache

import (
	"container/list"
	"sync"
	"time"
)

// VerifyFunc re-checks cached bytes at serve time: it reports whether
// data is the canonical content of the object named by key at offset
// off. The key is whatever the cache's user chose (the relay uses
// "host:port/name"); the hook owns the parsing.
type VerifyFunc func(key string, off int64, data []byte) bool

// Config configures a Cache.
type Config struct {
	// MaxBytes bounds the total cached payload; Put keeps evicting
	// least-recently-used objects until the cache fits. Required > 0.
	MaxBytes int64
	// TTL expires spans this long after their fill (0 = never).
	TTL time.Duration
	// Clock returns the current time (nil = time.Now); injectable for
	// expiry tests.
	Clock func() time.Time
	// Verify, when set, re-checks every span before Get serves it; a
	// failing span is dropped and the lookup degrades to a miss.
	Verify VerifyFunc
}

// span is one contiguous cached byte run of an object. Spans are
// maximal: Put coalesces overlapping and adjacent fills, so an object's
// spans are always sorted, disjoint, and non-adjacent — which is what
// lets Get serve any fully-covered range from exactly one span,
// zero-copy.
type span struct {
	off    int64
	data   []byte
	filled time.Time
}

func (s span) end() int64 { return s.off + int64(len(s.data)) }

// object is one cached object: its spans plus its declared full size
// (SizeUnknown until some fill reveals it).
type object struct {
	key   string
	spans []span
	size  int64
	elem  *list.Element
}

// SizeUnknown marks an object whose full size no fill has revealed yet.
const SizeUnknown = -1

// Cache is the bounded range-aware object cache. All methods are safe
// for concurrent use.
type Cache struct {
	cfg Config

	mu      sync.Mutex
	objects map[string]*object
	lru     *list.List // front = most recently used
	bytes   int64
	flights map[string]*Flight

	hits, misses, fills         int64
	hitBytes, fillBytes         int64
	evictions, evictedBytes     int64
	expirations, verifyFailures int64
	sharedFills, canceledWaits  int64
	flightWaiters               int64
}

// New returns an empty cache bounded by cfg.MaxBytes.
func New(cfg Config) *Cache {
	if cfg.MaxBytes <= 0 {
		panic("objcache: MaxBytes must be positive")
	}
	return &Cache{
		cfg:     cfg,
		objects: make(map[string]*object),
		lru:     list.New(),
		flights: make(map[string]*Flight),
	}
}

// Capacity returns the configured byte bound.
func (c *Cache) Capacity() int64 { return c.cfg.MaxBytes }

func (c *Cache) now() time.Time {
	if c.cfg.Clock != nil {
		return c.cfg.Clock()
	}
	return time.Now()
}

// obj returns the tracked object for key, creating it when create is
// set. Callers hold c.mu.
func (c *Cache) obj(key string, create bool) *object {
	o := c.objects[key]
	if o == nil && create {
		o = &object{key: key, size: SizeUnknown}
		o.elem = c.lru.PushFront(o)
		c.objects[key] = o
	}
	return o
}

// expireLocked drops o's spans whose TTL lapsed. Callers hold c.mu.
func (c *Cache) expireLocked(o *object, now time.Time) {
	if c.cfg.TTL <= 0 {
		return
	}
	kept := o.spans[:0]
	for _, s := range o.spans {
		if now.Sub(s.filled) > c.cfg.TTL {
			c.bytes -= int64(len(s.data))
			c.expirations++
			continue
		}
		kept = append(kept, s)
	}
	o.spans = kept
}

// dropLocked forgets an object entirely. Callers hold c.mu.
func (c *Cache) dropLocked(o *object, evicted bool) {
	for _, s := range o.spans {
		c.bytes -= int64(len(s.data))
		if evicted {
			c.evictions++
			c.evictedBytes += int64(len(s.data))
		}
	}
	o.spans = nil
	c.lru.Remove(o.elem)
	delete(c.objects, o.key)
}

// evictLocked removes least-recently-used objects until the cache fits,
// never touching keep (the object just filled). Callers hold c.mu.
func (c *Cache) evictLocked(keep *object) {
	for c.bytes > c.cfg.MaxBytes && c.lru.Len() > 0 {
		back := c.lru.Back().Value.(*object)
		if back == keep {
			// Only the freshly-filled object remains: shed its other
			// spans before giving up (the fresh span itself is bounded
			// by MaxBytes, so this always converges).
			c.trimLocked(keep)
			return
		}
		c.dropLocked(back, true)
	}
}

// trimLocked drops all but o's most recently filled span. Callers hold
// c.mu.
func (c *Cache) trimLocked(o *object) {
	newest := -1
	for i, s := range o.spans {
		if newest < 0 || s.filled.After(o.spans[newest].filled) {
			newest = i
		}
	}
	kept := o.spans[:0]
	for i, s := range o.spans {
		if i == newest {
			kept = append(kept, s)
			continue
		}
		c.bytes -= int64(len(s.data))
		c.evictions++
		c.evictedBytes += int64(len(s.data))
	}
	o.spans = kept
}

// Get returns the cached bytes of [off, off+n) of the object named key,
// or reports a miss. A hit is served zero-copy from the single span
// covering the range (coalescing guarantees there is exactly one); the
// returned slice must be treated as read-only and stays valid across
// concurrent eviction. With a Verify hook configured, the span is
// re-checked first and dropped on mismatch (the lookup then misses).
func (c *Cache) Get(key string, off, n int64) ([]byte, bool) {
	if n <= 0 {
		return nil, false
	}
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	o := c.obj(key, false)
	if o == nil {
		c.misses++
		return nil, false
	}
	c.expireLocked(o, now)
	for i, s := range o.spans {
		if s.off <= off && off+n <= s.end() {
			data := s.data[off-s.off : off-s.off+n : off-s.off+n]
			if c.cfg.Verify != nil && !c.cfg.Verify(key, off, data) {
				// One flipped bit must not propagate: drop the whole
				// span and let the caller refill from the origin.
				c.bytes -= int64(len(s.data))
				c.verifyFailures++
				c.misses++
				o.spans = append(o.spans[:i], o.spans[i+1:]...)
				return nil, false
			}
			c.hits++
			c.hitBytes += n
			c.lru.MoveToFront(o.elem)
			return data, true
		}
	}
	c.misses++
	return nil, false
}

// Contains reports whether [off, off+n) is fully cached, without
// touching counters, verification, or recency.
func (c *Cache) Contains(key string, off, n int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	o := c.obj(key, false)
	if o == nil {
		return false
	}
	for _, s := range o.spans {
		if s.off <= off && off+n <= s.end() {
			return true
		}
	}
	return false
}

// Put inserts p as the content of [off, off+len(p)) of the object named
// key, copying it (callers reuse their buffers) and coalescing with
// every overlapping or adjacent span so partial fetches compose into
// contiguous cached runs; where fills overlap, the fresh bytes win.
// Fills larger than the whole cache are ignored. Put evicts
// least-recently-used objects until the cache fits again.
func (c *Cache) Put(key string, off int64, p []byte) {
	if len(p) == 0 || int64(len(p)) > c.cfg.MaxBytes {
		return
	}
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	o := c.obj(key, true)
	c.expireLocked(o, now)

	lo, hi := off, off+int64(len(p))
	var keep, merge []span
	for _, s := range o.spans {
		if s.end() < lo || s.off > hi {
			keep = append(keep, s)
			continue
		}
		merge = append(merge, s)
		if s.off < lo {
			lo = s.off
		}
		if s.end() > hi {
			hi = s.end()
		}
	}
	if hi-lo > c.cfg.MaxBytes {
		// The coalesced run would outgrow the whole cache: keep only
		// the fresh fill and discard the spans it touched.
		for _, s := range merge {
			c.bytes -= int64(len(s.data))
			c.evictions++
			c.evictedBytes += int64(len(s.data))
		}
		merge = nil
		lo, hi = off, off+int64(len(p))
	}
	buf := make([]byte, hi-lo)
	for _, s := range merge {
		copy(buf[s.off-lo:], s.data)
		c.bytes -= int64(len(s.data))
	}
	copy(buf[off-lo:], p) // fresh bytes win on overlap
	c.bytes += int64(len(buf))
	c.fills++
	c.fillBytes += int64(len(p))

	// Re-insert sorted; keep already excludes everything merged.
	at := len(keep)
	for i, s := range keep {
		if s.off > lo {
			at = i
			break
		}
	}
	o.spans = append(keep[:at:at], append([]span{{off: lo, data: buf, filled: now}}, keep[at:]...)...)
	c.lru.MoveToFront(o.elem)
	c.evictLocked(o)
}

// SetSize records the object's full size, learned from an upstream
// response (Content-Length or Content-Range total), so later
// whole-object requests know which range to look up.
func (c *Cache) SetSize(key string, size int64) {
	if size < 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.obj(key, true).size = size
}

// Size returns the object's recorded full size, if any fill revealed it.
func (c *Cache) Size(key string) (int64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	o := c.obj(key, false)
	if o == nil || o.size == SizeUnknown {
		return 0, false
	}
	return o.size, true
}

// Stats is a point-in-time view of the cache, JSON-ready for
// /debug/cache and the facade's CacheStats.
type Stats struct {
	// CapacityBytes is the configured bound; BytesCached the payload
	// currently held (a gauge).
	CapacityBytes int64 `json:"capacity_bytes"`
	BytesCached   int64 `json:"bytes_cached"`
	// Objects and Spans gauge the current population.
	Objects int `json:"objects"`
	Spans   int `json:"spans"`

	// Hits/Misses count Get lookups; HitBytes the payload served from
	// cache. SharedFills are lookups answered by waiting on another
	// request's in-flight fill instead of fetching again.
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	HitBytes    int64 `json:"hit_bytes"`
	SharedFills int64 `json:"shared_fills"`

	// Fills counts Put insertions; FillBytes the payload written.
	Fills     int64 `json:"fills"`
	FillBytes int64 `json:"fill_bytes"`

	// Evictions/EvictedBytes count spans dropped for capacity,
	// Expirations spans dropped by TTL, VerifyFailures spans dropped
	// because serve-time re-verification caught corruption.
	Evictions      int64 `json:"evictions"`
	EvictedBytes   int64 `json:"evicted_bytes"`
	Expirations    int64 `json:"expirations"`
	VerifyFailures int64 `json:"verify_failures"`

	// ActiveFlights and FlightWaiters gauge the singleflight state;
	// CanceledWaits counts waiters that gave up (context death) while
	// their fill continued.
	ActiveFlights int   `json:"active_flights"`
	FlightWaiters int64 `json:"flight_waiters"`
	CanceledWaits int64 `json:"canceled_waits"`
}

// Lookups is the total Get traffic.
func (s Stats) Lookups() int64 { return s.Hits + s.Misses }

// HitRate is Hits over Lookups, 0 before any traffic.
func (s Stats) HitRate() float64 {
	if l := s.Lookups(); l > 0 {
		return float64(s.Hits) / float64(l)
	}
	return 0
}

// Warmth is the scalar the relay folds into its self-reported heartbeat
// score: the byte-weighted fullness of the cache blended with the hit
// rate, in [0, 1]. A relay that is both full of content and serving
// from it is "warm"; an empty or thrashing cache reports cold.
func (s Stats) Warmth() float64 {
	if s.CapacityBytes <= 0 {
		return 0
	}
	fullness := float64(s.BytesCached) / float64(s.CapacityBytes)
	if fullness > 1 {
		fullness = 1
	}
	return (fullness + s.HitRate()) / 2
}

// Stats snapshots the cache's counters and gauges. TTL expiry is
// applied first so the byte gauge never reports lapsed spans.
func (c *Cache) Stats() Stats {
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	spans := 0
	for _, o := range c.objects {
		c.expireLocked(o, now)
		spans += len(o.spans)
	}
	return Stats{
		CapacityBytes:  c.cfg.MaxBytes,
		BytesCached:    c.bytes,
		Objects:        len(c.objects),
		Spans:          spans,
		Hits:           c.hits,
		Misses:         c.misses,
		HitBytes:       c.hitBytes,
		SharedFills:    c.sharedFills,
		Fills:          c.fills,
		FillBytes:      c.fillBytes,
		Evictions:      c.evictions,
		EvictedBytes:   c.evictedBytes,
		Expirations:    c.expirations,
		VerifyFailures: c.verifyFailures,
		ActiveFlights:  len(c.flights),
		FlightWaiters:  c.flightWaiters,
		CanceledWaits:  c.canceledWaits,
	}
}
