package objcache

import "testing"

// BenchmarkCacheHit64K times the in-memory hit path: one lookup served
// zero-copy from a warm span. This is the per-request overhead a warm
// relay adds on top of writing the bytes out.
func BenchmarkCacheHit64K(b *testing.B) {
	c := New(Config{MaxBytes: 1 << 20})
	c.Put("o", 0, pattern(0, 1<<20))
	b.SetBytes(64 << 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(i%16) * (64 << 10)
		if _, ok := c.Get("o", off, 64<<10); !ok {
			b.Fatal("warm cache missed")
		}
	}
}

// BenchmarkCacheMissFill64K times the miss-then-fill path: a failed
// lookup followed by inserting the fetched range (no coalescing work —
// each iteration touches a rotating object so spans stay simple).
func BenchmarkCacheMissFill64K(b *testing.B) {
	c := New(Config{MaxBytes: 8 << 20})
	p := pattern(0, 64<<10)
	keys := []string{"a", "b", "c", "d"}
	b.SetBytes(64 << 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := keys[i%len(keys)]
		off := int64(i) * (64 << 10) // always a fresh range: guaranteed miss
		if _, ok := c.Get(key, off, 64<<10); ok {
			b.Fatal("expected miss")
		}
		c.Put(key, off, p)
	}
}

// BenchmarkCacheCoalescingPut64K times fills that extend an existing
// span, exercising the merge-and-copy path on every insertion.
func BenchmarkCacheCoalescingPut64K(b *testing.B) {
	p := pattern(0, 64<<10)
	b.SetBytes(64 << 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%16 == 0 {
			b.StopTimer()
			// Fresh cache every 16 fills so the merged span stays ~1 MB.
			benchCache = New(Config{MaxBytes: 4 << 20})
			b.StartTimer()
		}
		benchCache.Put("o", int64(i%16)*(64<<10), p)
	}
}

var benchCache *Cache
