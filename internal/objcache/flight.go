package objcache

import (
	"context"
	"strconv"
)

// Flight is one in-progress fill of an object range: the first request
// to miss becomes the leader and fetches from the origin; every
// concurrent miss for the same object/range becomes a waiter and is
// served from the leader's fill when it lands — N concurrent misses
// cost the origin exactly one fetch.
type Flight struct {
	c    *Cache
	fkey string
	key  string
	off  int64

	done chan struct{}
	data []byte
	err  error
}

func flightKey(key string, off, n int64) string {
	return key + "\x00" + strconv.FormatInt(off, 10) + "\x00" + strconv.FormatInt(n, 10)
}

// StartFlight joins or opens the fill for [off, off+n) of the object
// named key. leader reports whether the caller owns the fill: a leader
// must eventually call Complete exactly once (with the fetched bytes or
// the fetch error); everyone else waits on the same Flight with Wait.
func (c *Cache) StartFlight(key string, off, n int64) (f *Flight, leader bool) {
	fkey := flightKey(key, off, n)
	c.mu.Lock()
	defer c.mu.Unlock()
	if f := c.flights[fkey]; f != nil {
		return f, false
	}
	f = &Flight{c: c, fkey: fkey, key: key, off: off, done: make(chan struct{})}
	c.flights[fkey] = f
	return f, true
}

// Complete publishes the leader's fill: on success the bytes are
// inserted into the cache (coalescing as any Put does) and handed to
// every waiter; on error the waiters are released with the error and
// fall back to their own fetches. Complete must be called exactly once,
// and only by the leader.
func (f *Flight) Complete(data []byte, err error) {
	if err == nil {
		f.c.Put(f.key, f.off, data)
		f.data = data
	}
	f.err = err
	f.c.mu.Lock()
	delete(f.c.flights, f.fkey)
	f.c.mu.Unlock()
	close(f.done)
}

// Wait blocks until the leader completes the fill (returning its bytes
// or its error) or ctx dies first. A canceled waiter detaches without
// disturbing the fill — the leader keeps streaming and the cache still
// warms for everyone after.
func (f *Flight) Wait(ctx context.Context) ([]byte, error) {
	f.c.mu.Lock()
	f.c.flightWaiters++
	f.c.mu.Unlock()
	defer func() {
		f.c.mu.Lock()
		f.c.flightWaiters--
		f.c.mu.Unlock()
	}()
	select {
	case <-f.done:
		if f.err != nil {
			return nil, f.err
		}
		f.c.mu.Lock()
		f.c.sharedFills++
		f.c.mu.Unlock()
		return f.data, nil
	case <-ctx.Done():
		f.c.mu.Lock()
		f.c.canceledWaits++
		f.c.mu.Unlock()
		return nil, ctx.Err()
	}
}
