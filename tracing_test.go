package repro_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/relay"
	"repro/internal/shaper"
)

// TestCrossProcessTraceStitches is the acceptance check for the tracing
// tentpole: one SelectAndFetch over real loopback TCP — client racing the
// direct path against a relayed path, the relay and origin each recording
// their own spans — must yield exactly one trace that stitches into a
// single well-formed tree: the client's root "select" span on top, the
// relay's forward span nested inside the client transfer span that
// carried it, the origin's serve spans below, and the losing direct probe
// ending with the canceled class.
func TestCrossProcessTraceStitches(t *testing.T) {
	originSpans := repro.NewSpanCollector(256)
	origin := relay.NewOrigin()
	origin.Spans = originSpans
	origin.Put("large.bin", 600_000)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()

	relaySpans := repro.NewSpanCollector(256)
	r := &relay.Relay{Spans: relaySpans}
	rl, err := r.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rl.Close()

	// Throttle the direct path hard so the relayed probe always wins and
	// the direct probe is still mid-stream when the engine reaps it.
	d := shaper.NewDialer()
	d.SetProfile(ol.Addr().String(), shaper.PathProfile{DownloadBps: 1e6})
	d.SetProfile(rl.Addr().String(), shaper.PathProfile{DownloadBps: 50e6})

	tr := &repro.RealTransport{
		Servers: map[string]string{"origin": ol.Addr().String()},
		Relays:  map[string]string{"campus": rl.Addr().String()},
		Dial:    d.Dial,
		Verify:  true,
	}
	defer tr.Close()

	clientSpans := repro.NewSpanCollector(256)
	client := repro.New(tr,
		repro.WithProbeBytes(150_000),
		repro.WithSpans(clientSpans))

	obj := repro.Object{Server: "origin", Name: "large.bin", Size: 600_000}
	out := client.SelectAndFetch(context.Background(), obj, []string{"campus"})
	if out.Err != nil {
		t.Fatalf("select-and-fetch: %v", out.Err)
	}
	if out.Selected.IsDirect() {
		t.Fatalf("direct path won despite 50x throttle; selection %v", out.Selected)
	}

	// The loser's span is ended by its fetch goroutine, which may still be
	// unwinding its closed socket when SelectAndFetch returns (the watcher
	// published the canceled result first). Wait for it briefly.
	loser := awaitSpan(t, clientSpans, func(s repro.Span) bool {
		return s.Phase == "transfer" && s.Class == "canceled" && s.Attrs["path"] == "direct"
	})
	if loser.Err == "" {
		t.Fatal("canceled loser span carries no error detail")
	}

	// Merge the three processes' collectors — exactly what fetch -stitch
	// -merge does with the daemons' archives — and stitch.
	all := append(clientSpans.Spans(), relaySpans.Spans()...)
	all = append(all, originSpans.Spans()...)
	ids := repro.TraceIDs(all)
	if len(ids) != 1 {
		t.Fatalf("spans name %d traces, want exactly 1", len(ids))
	}
	roots := repro.StitchTrace(ids[0], all)
	if len(roots) != 1 {
		t.Fatalf("stitched %d roots, want a single tree", len(roots))
	}
	root := roots[0]
	if root.Span.Service != "client" || root.Span.Phase != "select" || root.Span.Class != "ok" {
		t.Fatalf("root span = %s/%s %s, want client/select ok", root.Span.Service, root.Span.Phase, root.Span.Class)
	}

	// Every span is reachable from the single root: no orphans, no
	// dangling parents anywhere in the cross-process merge.
	nodes := 0
	byPhase := map[string][]repro.Span{}
	root.Walk(func(n *repro.TraceNode, depth int) {
		nodes++
		key := n.Span.Service + "/" + n.Span.Phase
		byPhase[key] = append(byPhase[key], n.Span)
	})
	if nodes != len(all) {
		t.Fatalf("tree reaches %d of %d spans", nodes, len(all))
	}

	// All three services contributed, with the expected phase vocabulary.
	for _, key := range []string{"client/race", "client/transfer", "client/dial",
		"client/ttfb", "client/stream", "client/verify", "relay/forward",
		"relay/dial", "relay/ttfb", "relay/stream", "origin/serve"} {
		if len(byPhase[key]) == 0 {
			t.Fatalf("no %s span in the stitched trace (have %v)", key, phaseKeys(byPhase))
		}
	}
	// Two relayed requests crossed the hop (probe + warm remainder), and
	// the origin served every request of the operation: two relayed plus
	// the direct probe.
	if got := len(byPhase["relay/forward"]); got != 2 {
		t.Fatalf("%d relay forward spans, want 2 (probe + remainder)", got)
	}
	if got := len(byPhase["origin/serve"]); got != 3 {
		t.Fatalf("%d origin serve spans, want 3", got)
	}

	// Timeline shape: the root covers the start of everything beneath it,
	// and every successful client span ends within it. The canceled loser
	// and its phase children outlive the root by their socket-unwind time,
	// so that subtree is exempt from the end check.
	unwound := map[repro.SpanID]bool{}
	var markUnwound func(n *repro.TraceNode, inside bool)
	markUnwound = func(n *repro.TraceNode, inside bool) {
		inside = inside || n.Span.Class == "canceled"
		if inside {
			unwound[n.Span.ID] = true
		}
		for _, c := range n.Children {
			markUnwound(c, inside)
		}
	}
	markUnwound(root, false)
	for _, spans := range byPhase {
		for _, s := range spans {
			if s.Start < root.Span.Start {
				t.Fatalf("%s/%s starts before the root", s.Service, s.Phase)
			}
			if s.Class == "ok" && s.Service == "client" && !unwound[s.ID] &&
				s.EndTime() > root.Span.EndTime() {
				t.Fatalf("%s/%s ends after the root", s.Service, s.Phase)
			}
		}
	}

	// The relay hop nests inside the client transfer span that carried the
	// x-trace header: parent link and interval containment (the relay may
	// finish its bookkeeping a beat after the client's last read, hence the
	// slack on the end edge).
	byID := map[repro.SpanID]repro.Span{}
	for _, s := range all {
		byID[s.ID] = s
	}
	const endSlack = int64(100 * time.Millisecond)
	for _, fwd := range byPhase["relay/forward"] {
		parent, ok := byID[fwd.Parent]
		if !ok || parent.Service != "client" || parent.Phase != "transfer" {
			t.Fatalf("forward span parent = %+v, want a client transfer span", parent)
		}
		if fwd.Start < parent.Start || fwd.EndTime() > parent.EndTime()+endSlack {
			t.Fatalf("forward span [%d,%d] escapes its transfer span [%d,%d]",
				fwd.Start, fwd.EndTime(), parent.Start, parent.EndTime())
		}
		if fwd.Class != "ok" && fwd.Class != "canceled" && fwd.Class != "failed" {
			t.Fatalf("forward span class %q", fwd.Class)
		}
	}
	// And the origin's serve spans sit under the relay hop for relayed
	// requests, under the client transfer for the direct probe.
	relayedServes, directServes := 0, 0
	for _, serve := range byPhase["origin/serve"] {
		parent := byID[serve.Parent]
		switch {
		case parent.Service == "relay" && parent.Phase == "forward":
			relayedServes++
		case parent.Service == "client" && parent.Phase == "transfer":
			directServes++
		default:
			t.Fatalf("serve span parent = %s/%s", parent.Service, parent.Phase)
		}
	}
	if relayedServes != 2 || directServes != 1 {
		t.Fatalf("serve parentage: %d relayed, %d direct; want 2, 1", relayedServes, directServes)
	}

	// The rendered timeline carries the whole story.
	text := repro.FormatTrace(ids[0], roots)
	for _, want := range []string{"client/select", "relay/forward", "origin/serve", "canceled"} {
		if !strings.Contains(text, want) {
			t.Fatalf("formatted trace missing %q:\n%s", want, text)
		}
	}
}

// awaitSpan polls the collector until a span matching pred arrives, for
// spans ended asynchronously after the operation returns.
func awaitSpan(t *testing.T, c *repro.SpanCollector, pred func(repro.Span) bool) repro.Span {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		for _, s := range c.Spans() {
			if pred(s) {
				return s
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("span never arrived; have %d spans", len(c.Spans()))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func phaseKeys(m map[string][]repro.Span) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestTracingDisabledRecordsNothing pins the opt-out: a client without
// WithSpans must leave every collector untouched and expose a nil
// Spans() accessor, keeping the hot path span-free.
func TestTracingDisabledRecordsNothing(t *testing.T) {
	origin := relay.NewOrigin()
	origin.Put("o.bin", 64_000)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()

	tr := &repro.RealTransport{
		Servers: map[string]string{"origin": ol.Addr().String()},
		Relays:  map[string]string{},
		Verify:  true,
	}
	defer tr.Close()

	client := repro.New(tr, repro.WithProbeBytes(16_000))
	if client.Spans() != nil {
		t.Fatal("untraced client exposes a collector")
	}
	out := client.SelectAndFetch(context.Background(),
		repro.Object{Server: "origin", Name: "o.bin", Size: 64_000}, nil)
	if out.Err != nil {
		t.Fatal(out.Err)
	}
}
