package repro_test

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/relay"
)

// fakeTransport is a minimal in-memory transport over a fake clock whose
// first failStarts transfers fail — an outage that heals.
type fakeTransport struct {
	now        float64
	rate       float64
	failStarts int
	starts     int
	lastBytes  int64
}

type fakeHandle struct {
	res  repro.FetchResult
	done bool
}

func (h *fakeHandle) Done() bool                { return h.done }
func (h *fakeHandle) Result() repro.FetchResult { return h.res }

func (t *fakeTransport) Now() float64 { return t.now }

func (t *fakeTransport) Start(obj repro.Object, path repro.Path, off, n int64) repro.Handle {
	t.starts++
	t.lastBytes = n
	h := &fakeHandle{res: repro.FetchResult{Path: path, Offset: off, Bytes: n, Start: t.now}}
	if t.starts <= t.failStarts {
		h.res.Err, h.res.End, h.done = fmt.Errorf("outage"), t.now, true
		return h
	}
	h.res.End = t.now + float64(n)*8/t.rate
	return h
}

func (t *fakeTransport) Wait(hs ...repro.Handle) {
	for _, h := range hs {
		fh := h.(*fakeHandle)
		if fh.res.End > t.now {
			t.now = fh.res.End
		}
		fh.done = true
	}
}

func TestClientRetryRecoversFromOutage(t *testing.T) {
	// Both probes of the first attempt fail; the retry succeeds.
	tr := &fakeTransport{rate: 1e6, failStarts: 2}
	c := repro.New(tr, repro.WithProbeBytes(10_000), repro.WithRetry(2, time.Millisecond))
	obj := repro.Object{Server: "s", Name: "o", Size: 100_000}
	out := c.SelectAndFetch(context.Background(), obj, []string{"r"})
	if out.Err != nil {
		t.Fatalf("retry did not recover: %v", out.Err)
	}
	if tr.starts <= 2 {
		t.Fatalf("%d starts; no second attempt made", tr.starts)
	}
}

func TestClientFailsWithoutRetry(t *testing.T) {
	tr := &fakeTransport{rate: 1e6, failStarts: 2}
	c := repro.New(tr, repro.WithProbeBytes(10_000))
	out := c.SelectAndFetch(context.Background(), repro.Object{Server: "s", Name: "o", Size: 100_000},
		[]string{"r"})
	if !errors.Is(out.Err, repro.ErrAllPathsFailed) {
		t.Fatalf("err = %v, want ErrAllPathsFailed", out.Err)
	}
	if tr.starts != 2 {
		t.Fatalf("%d starts, want 2 (no retry configured)", tr.starts)
	}
}

func TestClientDoesNotRetryCanceledOperations(t *testing.T) {
	tr := &fakeTransport{rate: 1e6, failStarts: 100}
	c := repro.New(tr, repro.WithProbeBytes(10_000), repro.WithRetry(5, time.Millisecond))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := c.SelectAndFetch(ctx, repro.Object{Server: "s", Name: "o", Size: 100_000}, []string{"r"})
	if out.Err == nil {
		t.Fatal("expected an error under a dead context")
	}
	if tr.starts != 2 {
		t.Fatalf("%d starts, want 2 (canceled operations must not retry)", tr.starts)
	}
}

func TestClientProbeBytesOption(t *testing.T) {
	tr := &fakeTransport{rate: 1e6}
	c := repro.New(tr, repro.WithProbeBytes(12_345))
	probes := c.Probe(context.Background(), repro.Object{Server: "s", Name: "o", Size: 1_000_000}, nil)
	if len(probes) != 1 {
		t.Fatalf("%d probes, want 1 (direct only)", len(probes))
	}
	if tr.lastBytes != 12_345 {
		t.Fatalf("probe size %d, want 12345", tr.lastBytes)
	}
}

// stuckTransport only completes transfers through context death.
type stuckTransport struct{}

type stuckHandle struct {
	ctx  context.Context
	res  repro.FetchResult
	done bool
}

func (h *stuckHandle) Done() bool                { return h.done }
func (h *stuckHandle) Result() repro.FetchResult { return h.res }

func (t *stuckTransport) Now() float64 { return 0 }

func (t *stuckTransport) Start(obj repro.Object, path repro.Path, off, n int64) repro.Handle {
	return t.StartCtx(context.Background(), obj, path, off, n)
}

func (t *stuckTransport) StartCtx(ctx context.Context, obj repro.Object, path repro.Path, off, n int64) repro.Handle {
	return &stuckHandle{ctx: ctx, res: repro.FetchResult{Path: path, Offset: off, Bytes: n}}
}

func (t *stuckTransport) Wait(hs ...repro.Handle) {
	for _, h := range hs {
		sh := h.(*stuckHandle)
		if sh.done {
			continue
		}
		<-sh.ctx.Done()
		if errors.Is(sh.ctx.Err(), context.DeadlineExceeded) {
			sh.res.Err = fmt.Errorf("%w: %w", repro.ErrProbeTimeout, sh.ctx.Err())
		} else {
			sh.res.Err = fmt.Errorf("%w: %w", repro.ErrCanceled, sh.ctx.Err())
		}
		sh.done = true
	}
}

func TestClientTimeoutBoundsStuckTransfer(t *testing.T) {
	c := repro.New(&stuckTransport{}, repro.WithProbeBytes(10_000),
		repro.WithTimeout(30*time.Millisecond))
	done := make(chan repro.Outcome, 1)
	go func() {
		done <- c.SelectAndFetch(context.Background(),
			repro.Object{Server: "s", Name: "o", Size: 100_000}, nil)
	}()
	select {
	case out := <-done:
		if !errors.Is(out.Err, repro.ErrProbeTimeout) {
			t.Fatalf("err = %v, want ErrProbeTimeout", out.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WithTimeout did not bound a stuck transfer")
	}
}

func TestDeprecatedFreeFunctionsStillWork(t *testing.T) {
	tr := &fakeTransport{rate: 1e6}
	obj := repro.Object{Server: "s", Name: "o", Size: 200_000}
	out := repro.SelectAndFetch(tr, obj, []string{"r"}, repro.Config{ProbeBytes: 50_000})
	if out.Err != nil {
		t.Fatalf("deprecated SelectAndFetch failed: %v", out.Err)
	}
	probes := repro.Probe(&fakeTransport{rate: 1e6}, obj, 50_000, []string{"r"})
	if len(probes) != 2 {
		t.Fatalf("%d probe results, want 2", len(probes))
	}
	seq := repro.ProbeSequential(&fakeTransport{rate: 1e6}, obj, 50_000, []string{"r"})
	if len(seq) != 2 {
		t.Fatalf("%d sequential probe results, want 2", len(seq))
	}
}

// TestClientPoolOptions checks WithPoolSize/WithIdleTTL reach the real
// transport and that the pool reports reuse through the facade — a
// second fetch on the same path must ride the first one's connection.
func TestClientPoolOptions(t *testing.T) {
	origin := relay.NewOrigin()
	origin.Put("big.bin", 1_000_000)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()

	tr := &repro.RealTransport{
		Servers: map[string]string{"origin": ol.Addr().String()},
		Verify:  true,
	}
	c := repro.New(tr,
		repro.WithPoolSize(3),
		repro.WithIdleTTL(10*time.Second),
		repro.WithProbeBytes(50_000))
	defer tr.Close()
	if tr.MaxIdlePerPath != 3 || tr.IdleTTL != 10*time.Second {
		t.Fatalf("options not applied: MaxIdlePerPath=%d IdleTTL=%v",
			tr.MaxIdlePerPath, tr.IdleTTL)
	}

	obj := repro.Object{Server: "origin", Name: "big.bin", Size: 300_000}
	for i := 0; i < 2; i++ {
		out := c.SelectAndFetch(context.Background(), obj, nil)
		if out.Err != nil {
			t.Fatalf("fetch %d: %v", i, out.Err)
		}
	}
	// Each operation's remainder continues warm on the probe's connection,
	// and the second operation's probe can reuse the first's parked conn.
	if st := tr.PoolStats(); st.Reuses == 0 {
		t.Fatalf("no pool reuse across fetches: %+v", st)
	}
}

// progressRecorder is a facade-level ProgressObserver.
type progressRecorder struct {
	repro.BaseObserver
	chunks atomic.Int64
	bytes  atomic.Int64
}

func (p *progressRecorder) TransferProgress(e repro.ProgressEvent) {
	p.chunks.Add(1)
	p.bytes.Add(e.Chunk)
}

// TestClientStreamsProgressEvents checks the optional observer interface
// end to end: a client-attached ProgressObserver sees the streamed bytes,
// and the built-in metrics snapshot counts them.
func TestClientStreamsProgressEvents(t *testing.T) {
	origin := relay.NewOrigin()
	origin.Put("big.bin", 2_000_000)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()

	rec := &progressRecorder{}
	tr := &repro.RealTransport{
		Servers: map[string]string{"origin": ol.Addr().String()},
		Verify:  true,
	}
	c := repro.New(tr, repro.WithObserver(rec), repro.WithProbeBytes(50_000))
	defer tr.Close()
	tr.Observer = c.Observer()

	obj := repro.Object{Server: "origin", Name: "big.bin", Size: 2_000_000}
	out := c.SelectAndFetch(context.Background(), obj, nil)
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if got := rec.bytes.Load(); got != obj.Size {
		t.Fatalf("observer saw %d streamed bytes, want %d", got, obj.Size)
	}
	if rec.chunks.Load() < 2 {
		t.Fatalf("only %d progress events for a 2 MB object", rec.chunks.Load())
	}
	if snap := c.Snapshot(); snap.BytesStreamed != obj.Size {
		t.Fatalf("metrics streamed %d bytes, want %d", snap.BytesStreamed, obj.Size)
	}
}

// TestClientCacheOptions checks the facade's cache wiring end to end:
// WithCacheSize/WithCacheTTL configure the underlying RealTransport,
// repeat fetches are served from the cache without origin traffic, and
// CacheStats surfaces the re-exported snapshot.
func TestClientCacheOptions(t *testing.T) {
	origin := relay.NewOrigin()
	origin.Put("big.bin", 1_000_000)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()

	tr := &repro.RealTransport{
		Servers: map[string]string{"origin": ol.Addr().String()},
		Verify:  true,
	}
	c := repro.New(tr,
		repro.WithCacheSize(4<<20),
		repro.WithCacheTTL(time.Minute),
		repro.WithProbeBytes(50_000))
	defer tr.Close()
	if tr.CacheBytes != 4<<20 || tr.CacheTTL != time.Minute {
		t.Fatalf("options not applied: CacheBytes=%d CacheTTL=%v",
			tr.CacheBytes, tr.CacheTTL)
	}

	obj := repro.Object{Server: "origin", Name: "big.bin", Size: 300_000}
	if out := c.SelectAndFetch(context.Background(), obj, nil); out.Err != nil {
		t.Fatal(out.Err)
	}
	egress := origin.BytesServed.Load()
	if out := c.SelectAndFetch(context.Background(), obj, nil); out.Err != nil {
		t.Fatal(out.Err)
	}
	if got := origin.BytesServed.Load(); got != egress {
		t.Fatalf("repeat fetch cost %d origin bytes despite cache", got-egress)
	}
	var st repro.CacheStats = c.CacheStats()
	if st.CapacityBytes != 4<<20 || st.Hits == 0 || st.Fills == 0 {
		t.Fatalf("cache stats: %+v", st)
	}
}
