GO ?= go
BENCHTIME ?= 1s

.PHONY: build vet test race bench bench-json verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

# Machine-readable benchmark artifact: the warm-fetch streaming contract
# (flat allocs/op from 64 KB to 16 MB), the health-fold hot path, and the
# cache hit/miss paths (in-memory and relayed end to end), as JSON for CI
# archiving and cross-run comparison.
bench-json:
	$(GO) test -run '^$$' -bench 'WarmFetch|HealthFold|Cache' -benchmem -benchtime $(BENCHTIME) \
		./internal/realnet ./internal/obs ./internal/objcache ./internal/relay | $(GO) run ./cmd/benchjson -out BENCH_6.json

# The CI tier: static checks plus the full suite under the race detector.
verify: vet race
