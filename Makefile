GO ?= go
BENCHTIME ?= 1s

.PHONY: build vet test race bench bench-json fuzz-smoke chaos-smoke obs-smoke flight-smoke verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

# Machine-readable benchmark artifact: the warm-fetch streaming contract
# (flat allocs/op from 64 KB to 16 MB), the health-fold hot path, the
# cache hit/miss paths (in-memory and relayed end to end), the registry
# microbenchmarks (sharded vs single-mutex register, delta steady
# state), and the observability hot paths (striped vs single-cell
# counters under contention, worst-case exemplar render), as JSON for
# CI archiving and cross-run comparison. The registryload experiment
# (100k relays over live loopback TCP) and the observer-overhead
# experiment (bare vs fully instrumented relay, ABBA CPU-time blocks)
# run first and are embedded under extras; the obsoverhead experiment
# also prices the flight recorder's always-on wide-event ring and
# profiler cadence, and the FlightAppend benchmark pins the per-event
# append cost the ring adds to every transfer.
bench-json:
	$(GO) run ./cmd/indirectlab -exp registryload -regload-json registryload.json
	$(GO) run ./cmd/indirectlab -exp obsoverhead -obsoverhead-json obsoverhead.json
	$(GO) test -run '^$$' -bench 'WarmFetch|HealthFold|Cache|Registry|MetricsContended|ExemplarRender|FlightAppend|FlightDisabled' -benchmem -benchtime $(BENCHTIME) \
		./internal/realnet ./internal/obs ./internal/obs/flight ./internal/objcache ./internal/relay ./internal/registry \
		| $(GO) run ./cmd/benchjson -out BENCH_10.json -extra registryload=registryload.json -extra obsoverhead=obsoverhead.json

# Seed-corpus smoke for the wire-parser fuzz targets: runs each corpus
# as regular tests plus a short randomized burst, so CI exercises the
# parsers' crash-freedom invariants without an open-ended fuzz session.
fuzz-smoke:
	$(GO) test ./internal/registry/ -run '^Fuzz' -fuzz FuzzParseRequest -fuzztime 10s
	$(GO) test ./internal/registry/ -run '^Fuzz' -count=1
	$(GO) test ./internal/faultproxy/ -run '^Fuzz' -fuzz FuzzParseSchedule -fuzztime 10s
	$(GO) test ./internal/faultproxy/ -run '^Fuzz' -count=1

# The chaos tier: the fault-injection regression tests under the race
# detector (packet faults on the simulator, connection faults through
# the loopback proxy, the bug-sweep regressions they pinned), then the
# full nine-class campaign with its JSON scorecard and the anomaly
# debug bundles the flight trigger engine captured per live fault
# class (archived as a CI artifact).
chaos-smoke:
	$(GO) test -race -count=1 ./internal/simnet/ ./internal/faultproxy/ \
		-run 'Fault|Schedule|Proxy|Burst|SamplePacket'
	$(GO) test -race -count=1 ./internal/relay/ ./internal/realnet/ ./internal/obs/ \
		-run 'Chaos|WarmFetch|Forward|Taxonomy|FillForward|CachedRelay'
	$(GO) test -race -count=1 . -run 'Chaos'
	$(GO) run ./cmd/indirectlab -exp chaos -scale quick -chaos-json chaos.json -chaos-bundle-dir chaos-bundles

# The observability tier: the fleet aggregator e2e (three loopback
# relays scraped over real HTTP, induced degradation, staleness), the
# striped-counter and exemplar correctness suite, the tail-retention
# policy tests, concurrent structured logging, and the scraped-exemplar
# -> stitched-trace acceptance path — all under the race detector.
obs-smoke:
	$(GO) test -race -count=1 ./internal/obs/fleet/ ./internal/obs/slogx/
	$(GO) test -race -count=1 ./internal/obs/ \
		-run 'Striped|StripePicker|Exemplar|Tail|OpenMetrics|Accepts|ParseProm|MergeHistogram|Runtime|HistogramSum|HistogramEdges|HistogramReconstruction'
	$(GO) test -race -count=1 ./internal/realnet/ -run 'ExemplarResolvesToStitchedTrace'
	$(GO) test -race -count=1 ./internal/experiment/ -run 'RunObsOverhead'

# The flight-recorder tier: the whole wide-event/profiler/trigger
# package under the race detector (ring rotation, archive backpressure,
# trigger rate limiting, bundle assembly), the realnet and relay
# wide-event integrations, the SLO burn-rate clamp regression, the
# health-transition callback, and the daemon debug surfaces
# (/debug/requests, /debug/active, /debug/bundle, /debug/stack).
flight-smoke:
	$(GO) test -race -count=1 ./internal/obs/flight/
	$(GO) test -race -count=1 ./internal/realnet/ ./internal/relay/ -run 'Flight'
	$(GO) test -race -count=1 ./internal/obs/ -run 'SLOObjectiveOne|SLOOnFastBurn|HealthOnTransition'
	$(GO) test -race -count=1 ./internal/daemon/ -run 'AllDaemonMetricsPagesLint'

# The CI tier: static checks plus the full suite under the race detector.
verify: vet race
