GO ?= go

.PHONY: build vet test race bench verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

# The CI tier: static checks plus the full suite under the race detector.
verify: vet race
