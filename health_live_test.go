package repro_test

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/daemon"
	"repro/internal/httpx"
	"repro/internal/relay"
	"repro/internal/shaper"
)

// throttleProxy forwards TCP to a target through an adjustable downstream
// rate limit, and can be killed mid-run: the listener closes and every
// spliced connection is severed. The throttle lives on the server side of
// the client's connections, so installing a new rate degrades pooled
// connections that are already established — exactly how a congested or
// failing relay looks from the outside.
type throttleProxy struct {
	l       net.Listener
	target  string
	limiter atomic.Pointer[shaper.Bucket]

	mu    sync.Mutex
	conns []net.Conn
}

func newThrottleProxy(t *testing.T, target string) *throttleProxy {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &throttleProxy{l: l, target: target}
	go p.serve()
	return p
}

func (p *throttleProxy) addr() string { return p.l.Addr().String() }

// setRate caps the downstream (proxy -> client) rate in bits/sec,
// effective immediately on all current and future connections. The small
// burst keeps even one probe-sized read from bypassing the cap.
func (p *throttleProxy) setRate(bps float64) {
	p.limiter.Store(shaper.NewBucket(bps/8, 8<<10))
}

func (p *throttleProxy) track(c net.Conn) {
	p.mu.Lock()
	p.conns = append(p.conns, c)
	p.mu.Unlock()
}

func (p *throttleProxy) serve() {
	for {
		client, err := p.l.Accept()
		if err != nil {
			return
		}
		upstream, err := net.Dial("tcp", p.target)
		if err != nil {
			client.Close()
			continue
		}
		p.track(client)
		p.track(upstream)
		go func() { io.Copy(upstream, client); upstream.Close() }()
		go func() {
			io.Copy(throttleWriter{client, p}, upstream)
			client.Close()
		}()
	}
}

type throttleWriter struct {
	w io.Writer
	p *throttleProxy
}

func (t throttleWriter) Write(b []byte) (int, error) {
	// Re-read the limiter per write so a rate installed mid-flight
	// applies to in-progress splices; chunk so slow rates stay smooth.
	written := 0
	for written < len(b) {
		chunk := b[written:]
		if len(chunk) > 8<<10 {
			chunk = chunk[:8<<10]
		}
		t.p.limiter.Load().Take(len(chunk))
		n, err := t.w.Write(chunk)
		written += n
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// kill severs the proxy: no new connections, all spliced ones closed.
func (p *throttleProxy) kill() {
	p.l.Close()
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.conns {
		c.Close()
	}
}

// scrapeJSON GETs path from a debug server and decodes the JSON body.
func scrapeJSON(t *testing.T, addr, path string, v any) {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if err := httpx.NewGet(path, addr).Write(conn); err != nil {
		t.Fatal(err)
	}
	resp, err := httpx.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 {
		t.Fatalf("GET %s: status %d: %s", path, resp.Status, body)
	}
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("GET %s: bad JSON: %v\n%s", path, err, body)
	}
}

// TestHealthTelemetryTracksInducedDegradation is the live acceptance
// check for the path-health subsystem: on a loopback testbed, a relay
// path's telemetry — scraped from the same /debug/paths endpoint the
// daemons serve — must reflect an induced throughput collapse within one
// rolling window, and the damped state machine must walk healthy ->
// degraded -> down (collapse, then kill) without flapping.
func TestHealthTelemetryTracksInducedDegradation(t *testing.T) {
	origin := relay.NewOrigin()
	origin.Put("big.bin", 96_000)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()

	r := &relay.Relay{}
	rl, err := r.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rl.Close()
	proxy := newThrottleProxy(t, rl.Addr().String())
	defer proxy.kill()

	// Direct is modest; the relay path (through the proxy) starts
	// unthrottled, so the healthy phase prefers it.
	d := shaper.NewDialer()
	d.SetProfile(ol.Addr().String(), shaper.PathProfile{DownloadBps: 4e6})

	tr := &repro.RealTransport{
		Servers: map[string]string{"origin": ol.Addr().String()},
		Relays:  map[string]string{"r": proxy.addr()},
		Dial:    d.Dial,
		Verify:  true,
	}
	defer tr.Close()

	// A short window so the test observes transitions quickly. The
	// MaxThroughput rule makes every probe run to completion: under the
	// default first-finished rule the losing (collapsed) probe would be
	// reaped as canceled, which is deliberately not a health sample.
	hm := repro.NewHealthMonitor(repro.HealthConfig{Window: 3, Buckets: 12, Hysteresis: 2, MinDwell: 0.3})
	cfg := hm.Config() // default-filled (score bands, dwell)
	client := repro.New(tr,
		repro.WithProbeBytes(32_000),
		repro.WithRule(repro.MaxThroughput),
		repro.WithHealthMonitor(hm))
	tr.Observer = client.Observer()

	// Serve the client's health through the shared daemon mux and watch
	// it exactly as an operator would: over HTTP.
	dl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dctx, dcancel := context.WithCancel(context.Background())
	srv := &httpx.Server{Mux: (&daemon.Daemon{Prefix: "client", Health: hm}).Mux()}
	done := make(chan struct{})
	go func() { defer close(done); srv.ServeListener(dctx, dl) }()
	defer func() { dcancel(); <-done }()
	debugAddr := dl.Addr().String()

	obj := repro.Object{Server: "origin", Name: "big.bin", Size: 96_000}
	// mustOK distinguishes the phases: while the relay is up every
	// operation must succeed outright; once it is killed the outcome
	// carries the failed probe's error by design, and the fetch itself
	// still completing over direct is the assertion that matters.
	round := func(mustOK bool) {
		out := client.SelectAndFetch(context.Background(), obj, []string{"r"})
		if mustOK && out.Err != nil {
			t.Fatalf("select-and-fetch failed: %v", out.Err)
		}
		if !mustOK && out.Remainder.Err != nil {
			t.Fatalf("direct fallback fetch failed: %v", out.Remainder.Err)
		}
	}
	pathState := func() (repro.PathHealthInfo, repro.PathHealthInfo) {
		var snap repro.HealthSnapshot
		scrapeJSON(t, debugAddr, "/debug/paths", &snap)
		rp, ok := snap.Path("r")
		if !ok {
			t.Fatalf("path %q missing from /debug/paths: %+v", "r", snap)
		}
		dp, ok := snap.Path("direct")
		if !ok {
			t.Fatalf("path %q missing from /debug/paths: %+v", "direct", snap)
		}
		return rp, dp
	}

	// Phase A: establish the relay path as healthy, and hold it there
	// long enough to clear the dwell so the degraded transition is not
	// suppressed as a flap.
	start := time.Now()
	for {
		round(true)
		rp, _ := pathState()
		if rp.State == repro.HealthHealthy && time.Since(start) > 600*time.Millisecond {
			break
		}
		if time.Since(start) > 10*time.Second {
			t.Fatalf("relay path never became healthy: %+v", rp)
		}
	}

	// Phase B: collapse the relay path's throughput (requests still
	// succeed). The telemetry must report degraded within one window.
	proxy.setRate(1e6)
	collapse := time.Now()
	for {
		round(true)
		rp, _ := pathState()
		if rp.State == repro.HealthDegraded {
			if rp.Score < cfg.DownScore || rp.Score >= 0.75 {
				t.Errorf("degraded score %.3f outside the degraded band", rp.Score)
			}
			break
		}
		if rp.State == repro.HealthDown {
			t.Fatalf("collapse skipped degraded and went straight down: %+v", rp)
		}
		if time.Since(collapse) > 10*time.Second {
			t.Fatalf("degradation never reported: %+v", rp)
		}
	}
	if took := time.Since(collapse); took.Seconds() > cfg.Window {
		t.Errorf("degraded reported after %.2fs, want within one %vs window", took.Seconds(), cfg.Window)
	} else {
		t.Logf("degraded reported %.2fs after collapse (window %vs)", took.Seconds(), cfg.Window)
	}

	// Phase C: kill the relay outright; failures plus staleness must
	// drive the path down.
	proxy.kill()
	killAt := time.Now()
	for {
		round(false)
		rp, _ := pathState()
		if rp.State == repro.HealthDown {
			break
		}
		if time.Since(killAt) > 15*time.Second {
			t.Fatalf("killed path never reported down: %+v", rp)
		}
	}

	// The full trajectory must be exactly healthy -> degraded -> down:
	// the hysteresis+dwell damping means no intermediate flapping ever
	// committed. (The initial unknown -> healthy adoption is not a
	// transition.)
	rp, dp := pathState()
	want := []struct{ from, to repro.HealthState }{
		{repro.HealthHealthy, repro.HealthDegraded},
		{repro.HealthDegraded, repro.HealthDown},
	}
	if len(rp.History) != len(want) {
		t.Fatalf("transition history = %+v, want exactly healthy->degraded->down", rp.History)
	}
	for i, w := range want {
		if rp.History[i].From != w.from || rp.History[i].To != w.to {
			t.Fatalf("transition %d = %s->%s, want %s->%s",
				i, rp.History[i].From, rp.History[i].To, w.from, w.to)
		}
	}
	if rp.Transitions != 2 {
		t.Fatalf("transitions = %d, want 2", rp.Transitions)
	}
	t.Logf("relay path: %d transitions, %d flaps suppressed", rp.Transitions, rp.FlapsSuppressed)

	// The direct path carried successes throughout and must still read
	// healthy — the monitor discriminates between paths.
	if dp.State != repro.HealthHealthy {
		t.Fatalf("direct path state = %s, want healthy (%+v)", dp.State, dp)
	}
}
