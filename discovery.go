package repro

// Relay discovery, re-exported from internal/registry: the options-first
// registry client, the cached delta-synced ranked set, and a one-call
// helper that turns a registry into the candidate map a RealTransport
// wants. The registry side (registryd) shards its table and serves
// epoch-keyed deltas, so these helpers hold up against very large relay
// fleets; point the client at every peered registryd and discovery
// survives losing one.
//
//	rc := repro.NewRegistryClient("10.0.0.5:8070",
//	    repro.WithRegistryTimeout(3*time.Second),
//	    repro.WithRegistryFallbackPeers("10.0.0.6:8070"))
//	defer rc.Close()
//	relays, err := repro.DiscoverRelays(ctx, rc, 10)

import (
	"context"
	"time"

	"repro/internal/registry"
)

// Registry discovery types, re-exported for downstream users.
type (
	// RegistryClient talks the registry wire protocol: context-aware
	// Register/List/ListRanked/ListDelta/StartHeartbeat with configurable
	// timeouts, retries, connection pooling, and fallback peers.
	RegistryClient = registry.Client
	// RegistryClientOption configures NewRegistryClient.
	RegistryClientOption = registry.ClientOption
	// RegistryEntry is one registered relay (name, address, health
	// score, up/down state).
	RegistryEntry = registry.Entry
	// RegistryRankedSet is a client-side mirror of the registry kept
	// fresh with epoch-keyed deltas; Top ranks locally without re-pulling
	// the full table.
	RegistryRankedSet = registry.RankedSet
	// RegistryHeartbeatState is the observable status of a background
	// registration heartbeat.
	RegistryHeartbeatState = registry.HeartbeatState
)

// Registry client errors, re-exported for errors.Is checks.
var (
	// ErrRegistryUnavailable reports that the registry and every
	// fallback peer failed.
	ErrRegistryUnavailable = registry.ErrUnavailable
	// ErrRegistryRejected reports a request the registry refused.
	ErrRegistryRejected = registry.ErrRejected
)

// NewRegistryClient returns a client for the registry at addr.
func NewRegistryClient(addr string, opts ...RegistryClientOption) *RegistryClient {
	return registry.NewClient(addr, opts...)
}

// NewRegistryRankedSet returns an empty delta-synced mirror; the first
// Refresh performs a full sync.
func NewRegistryRankedSet() *RegistryRankedSet { return registry.NewRankedSet() }

// WithRegistryTimeout bounds each registry request.
func WithRegistryTimeout(d time.Duration) RegistryClientOption { return registry.WithTimeout(d) }

// WithRegistryRetry retries transport failures up to n more times with
// exponential backoff.
func WithRegistryRetry(n int, backoff time.Duration) RegistryClientOption {
	return registry.WithRetry(n, backoff)
}

// WithRegistryPooledConn keeps one connection open across requests.
func WithRegistryPooledConn() RegistryClientOption { return registry.WithPooledConn() }

// WithRegistryFallbackPeers adds peer registries tried when the primary
// is unreachable.
func WithRegistryFallbackPeers(addrs ...string) RegistryClientOption {
	return registry.WithFallbackPeers(addrs...)
}

// DiscoverRelays asks the registry for the k healthiest live relays
// (k <= 0 means all) and returns them as the name -> addr map a
// RealTransport's Relays field wants. Entries the registry has marked
// down are excluded — they are served for visibility, not for routing.
func DiscoverRelays(ctx context.Context, c *RegistryClient, k int) (map[string]string, error) {
	entries, err := c.ListRanked(ctx, k)
	if err != nil {
		return nil, err
	}
	out := make(map[string]string, len(entries))
	for _, e := range entries {
		if !e.Down {
			out[e.Name] = e.Addr
		}
	}
	return out, nil
}
