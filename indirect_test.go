package repro_test

import (
	"testing"

	"repro"
	"repro/internal/relay"
	"repro/internal/shaper"
)

// TestFacadeEndToEnd exercises the public API exactly as the README
// quickstart does: origin + relays on loopback, shaped paths, one
// select-and-fetch.
func TestFacadeEndToEnd(t *testing.T) {
	origin := relay.NewOrigin()
	origin.Put("large.bin", 600_000)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()

	r := &relay.Relay{}
	rl, err := r.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rl.Close()

	d := shaper.NewDialer()
	d.SetProfile(ol.Addr().String(), shaper.PathProfile{DownloadBps: 2e6})
	d.SetProfile(rl.Addr().String(), shaper.PathProfile{DownloadBps: 10e6})

	tr := &repro.RealTransport{
		Servers: map[string]string{"origin": ol.Addr().String()},
		Relays:  map[string]string{"campus": rl.Addr().String()},
		Dial:    d.Dial,
		Verify:  true,
	}

	obj := repro.Object{Server: "origin", Name: "large.bin", Size: 600_000}
	// The probe must exceed the shaper's 64 KB token burst for the rate
	// difference to show (the same reason the paper's probe must exceed
	// slow start).
	out := repro.SelectAndFetch(tr, obj, []string{"campus"}, repro.Config{ProbeBytes: 150_000})
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if out.Selected.Via != "campus" {
		t.Fatalf("selected %v, want the 10 Mb/s relay", out.Selected)
	}
	if out.Throughput() <= 0 {
		t.Fatal("no throughput")
	}
}

func TestFacadeHelpers(t *testing.T) {
	if repro.Improvement(2, 1) != 100 {
		t.Error("Improvement facade broken")
	}
	if repro.Penalty(1, 3) != 200 {
		t.Error("Penalty facade broken")
	}
	if repro.Direct != "" {
		t.Error("Direct constant changed")
	}
	if repro.DefaultProbeBytes != 100_000 {
		t.Error("DefaultProbeBytes changed")
	}
	tr := repro.NewTracker()
	tr.Observe([]string{"a"}, repro.Path{Via: "a"})
	if tr.Utilization("a") != 1 {
		t.Error("Tracker facade broken")
	}
	if repro.FirstFinished.String() != "first-finished" {
		t.Error("rule constants broken")
	}
}

func TestFacadeMultipath(t *testing.T) {
	origin := relay.NewOrigin()
	origin.Put("large.bin", 600_000)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()
	r := &relay.Relay{}
	rl, err := r.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rl.Close()
	d := shaper.NewDialer()
	d.SetProfile(ol.Addr().String(), shaper.PathProfile{DownloadBps: 4e6})
	d.SetProfile(rl.Addr().String(), shaper.PathProfile{DownloadBps: 4e6})
	tr := &repro.RealTransport{
		Servers: map[string]string{"origin": ol.Addr().String()},
		Relays:  map[string]string{"r": rl.Addr().String()},
		Dial:    d.Dial,
		Verify:  true,
	}
	defer tr.Close()
	mp := &repro.MultipathDownloader{Transport: tr, ChunkBytes: 150_000}
	obj := repro.Object{Server: "origin", Name: "large.bin", Size: 600_000}
	res, err := mp.Download(obj, []string{"r"})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, s := range res.Shares {
		total += s.Bytes
	}
	if total != obj.Size {
		t.Fatalf("striped %d of %d bytes", total, obj.Size)
	}
}

func TestFacadeMonitor(t *testing.T) {
	m := repro.NewMonitor()
	m.Observe("origin", repro.Path{Via: "A"}, 5e6)
	if v, ok := m.Estimate("origin", repro.Path{Via: "A"}); !ok || v != 5e6 {
		t.Fatalf("monitor facade: %v %v", v, ok)
	}
	best, ok := m.Best("origin", []string{"A"})
	if !ok || best.Via != "A" {
		t.Fatalf("best = %v", best)
	}
}

func TestFacadeDownloader(t *testing.T) {
	origin := relay.NewOrigin()
	origin.Put("large.bin", 500_000)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()
	tr := &repro.RealTransport{
		Servers: map[string]string{"origin": ol.Addr().String()},
		Verify:  true,
	}
	defer tr.Close()
	dl := &repro.Downloader{Transport: tr, ProbeBytes: 50_000, SegmentBytes: 200_000}
	obj := repro.Object{Server: "origin", Name: "large.bin", Size: 500_000}
	res, err := dl.Download(obj, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FinalPath().IsDirect() {
		t.Fatalf("final path %v", res.FinalPath())
	}
}
