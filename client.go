package repro

import (
	"context"
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/realnet"
)

// Sentinel errors, re-exported so downstream callers can classify
// failures with errors.Is without importing internal packages:
//
//	out := c.SelectAndFetch(ctx, obj, cands)
//	switch {
//	case errors.Is(out.Err, repro.ErrProbeTimeout):   // path too slow: penalty
//	case errors.Is(out.Err, repro.ErrCanceled):       // caller abandoned it
//	case errors.Is(out.Err, repro.ErrAllPathsFailed): // outage: nothing delivered
//	}
var (
	// ErrAllPathsFailed reports that every candidate path (including
	// direct) failed during an operation.
	ErrAllPathsFailed = core.ErrAllPathsFailed
	// ErrCanceled reports a transfer abandoned by context cancellation.
	ErrCanceled = core.ErrCanceled
	// ErrProbeTimeout reports a transfer whose deadline expired.
	ErrProbeTimeout = core.ErrProbeTimeout
)

// Client is the context-first facade over the selection engine: it binds
// a Transport to a probing/selection configuration, an optional
// per-operation timeout, and an optional bounded retry policy. A Client
// is safe for concurrent use when its Transport is (RealTransport is;
// the virtual-time simulator, being single-clocked, is not).
//
//	c := repro.New(tr,
//	    repro.WithProbeBytes(150_000),
//	    repro.WithTimeout(30*time.Second),
//	    repro.WithRetry(2, 200*time.Millisecond))
//	out := c.SelectAndFetch(ctx, obj, []string{"campus", "isp"})
type Client struct {
	transport Transport
	cfg       core.Config
	timeout   time.Duration
	retries   int
	backoff   time.Duration
	poolSize  int
	idleTTL   time.Duration
	cacheSize int64
	cacheTTL  time.Duration
	metrics   *obs.Metrics
	observers []obs.Observer
	spans     *obs.SpanCollector
	health    *obs.HealthMonitor
}

// Option configures a Client.
type Option func(*Client)

// New returns a Client over the given transport. Without options it
// reproduces the paper's defaults: 100 KB probes, first-finished rule,
// no timeout, no retry.
//
// Every Client carries a built-in Metrics collector — Metrics and
// Snapshot read it — and WithObserver attaches further sinks alongside
// it.
func New(t Transport, opts ...Option) *Client {
	c := &Client{transport: t, metrics: obs.NewMetrics()}
	for _, o := range opts {
		o(c)
	}
	// Fan out to the built-in collector, anything WithConfig installed,
	// and every WithObserver sink, in that order.
	c.cfg.Observer = obs.Multi(append([]obs.Observer{c.metrics, c.cfg.Observer}, c.observers...)...)
	// Tracing wires through both layers: the engine opens root spans, the
	// real transport records per-phase children and the wire header.
	c.cfg.Spans = c.spans
	// The pool knobs configure the real transport; other transports have
	// no connection pool and ignore them.
	if rt, ok := t.(*realnet.Transport); ok {
		if c.poolSize != 0 {
			rt.MaxIdlePerPath = c.poolSize
		}
		if c.idleTTL != 0 {
			rt.IdleTTL = c.idleTTL
		}
		if c.cacheSize > 0 {
			rt.CacheBytes = c.cacheSize
		}
		if c.cacheTTL != 0 {
			rt.CacheTTL = c.cacheTTL
		}
		if c.spans != nil {
			rt.Spans = c.spans
		}
	}
	return c
}

// WithProbeBytes sets the probe size x (the paper's experimentally
// determined default is 100 KB).
func WithProbeBytes(x int64) Option {
	return func(c *Client) { c.cfg.ProbeBytes = x }
}

// WithRule sets the probe-comparison rule (FirstFinished by default).
func WithRule(r Rule) Option {
	return func(c *Client) { c.cfg.Rule = r }
}

// WithSequentialProbes probes candidates one at a time instead of racing
// them, keeping measurements contention-free at the cost of a longer
// probing phase (implies the MaxThroughput rule).
func WithSequentialProbes() Option {
	return func(c *Client) { c.cfg.Sequential = true }
}

// WithConfig replaces the whole selection configuration at once; later
// options still apply on top.
func WithConfig(cfg Config) Option {
	return func(c *Client) { c.cfg = cfg }
}

// WithObserver attaches an observer to the client: it receives every
// selection-lifecycle event (probe start/finish, loser cancellation,
// selection, transfers) from every operation, alongside the client's
// built-in Metrics collector. May be given multiple times; observers are
// invoked in registration order and must be safe for concurrent use.
func WithObserver(o Observer) Option {
	return func(c *Client) {
		if o != nil {
			c.observers = append(c.observers, o)
		}
	}
}

// WithPoolSize bounds the idle keep-alive connections a RealTransport
// parks per path (negative disables pooling). Only meaningful when the
// client wraps a *RealTransport; other transports ignore it.
func WithPoolSize(n int) Option {
	return func(c *Client) { c.poolSize = n }
}

// WithIdleTTL sets how long a RealTransport keeps an idle pooled
// connection before evicting it (negative disables expiry). Only
// meaningful when the client wraps a *RealTransport.
func WithIdleTTL(d time.Duration) Option {
	return func(c *Client) { c.idleTTL = d }
}

// WithCacheSize gives a RealTransport a bounded client-side object
// cache of the given byte capacity: every streamed range also fills
// the cache, and a later fetch fully covered by cached spans completes
// without touching the network. Zero (the default) disables caching —
// the transfer path, including its allocation profile, is then
// untouched. Only meaningful when the client wraps a *RealTransport.
func WithCacheSize(bytes int64) Option {
	return func(c *Client) { c.cacheSize = bytes }
}

// WithCacheTTL expires a RealTransport's cached spans this long after
// their fill; 0 keeps them until evicted by capacity pressure. Only
// meaningful together with WithCacheSize.
func WithCacheTTL(d time.Duration) Option {
	return func(c *Client) { c.cacheTTL = d }
}

// WithHealthMonitor attaches a path-health monitor to the client: every
// selection-lifecycle event folds into the monitor's per-path rolling
// windows, and Client.PathHealth/HealthMonitor read the damped health
// view. A nil monitor is ignored (the hot path stays free of health
// bookkeeping — the 62-alloc warm-fetch contract is pinned by
// BenchmarkWarmFetch64K with no monitor attached).
func WithHealthMonitor(h *HealthMonitor) Option {
	return func(c *Client) {
		// The nil check must happen on the concrete pointer: appending a
		// typed-nil *HealthMonitor as an Observer would defeat obs.Multi's
		// interface nil-skip and panic on the first event.
		if h != nil {
			c.health = h
			c.observers = append(c.observers, h)
		}
	}
}

// WithSpans enables distributed tracing: the engine opens root spans per
// operation in the collector and, when the client wraps a *RealTransport,
// the transport records per-phase child spans and stamps the x-trace
// header so relays and origins continue the trace. Spans carry wall-clock
// times; on the virtual-time simulator the option only records engine
// spans and should generally be left off.
func WithSpans(sc *SpanCollector) Option {
	return func(c *Client) { c.spans = sc }
}

// WithTimeout bounds each operation attempt: the attempt's context gets
// this deadline unless the caller's context expires sooner. Expiry
// surfaces as ErrProbeTimeout.
func WithTimeout(d time.Duration) Option {
	return func(c *Client) { c.timeout = d }
}

// WithRetry retries a failed operation up to n more times, sleeping
// backoff, 2*backoff, ... between attempts. Only genuine delivery
// failures are retried — an outcome whose object arrived (even if some
// losing probe failed) and operations abandoned by the caller's context
// are not.
func WithRetry(n int, backoff time.Duration) Option {
	return func(c *Client) {
		c.retries = n
		if backoff > 0 {
			c.backoff = backoff
		} else {
			c.backoff = 100 * time.Millisecond
		}
	}
}

func (c *Client) probeBytes() int64 {
	if c.cfg.ProbeBytes > 0 {
		return c.cfg.ProbeBytes
	}
	return DefaultProbeBytes
}

// attemptCtx derives one attempt's context from the caller's.
func (c *Client) attemptCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.timeout <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, c.timeout)
}

// sleepBackoff waits before retry attempt (1-based); it returns false if
// ctx died first.
func (c *Client) sleepBackoff(ctx context.Context, attempt int) bool {
	timer := time.NewTimer(c.backoff << (attempt - 1))
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// retryable reports whether an operation error is worth another attempt:
// cancellation by the caller never is.
func retryable(ctx context.Context, err error) bool {
	if err == nil || ctx.Err() != nil {
		return false
	}
	return !errors.Is(err, ErrCanceled)
}

// SelectAndFetch runs the paper's full client operation under ctx: probe
// the direct path and all candidates, commit to the winner (cancelling
// the losing probes on context-aware transports), and fetch the
// remainder over it. With WithRetry, an attempt that delivered nothing
// is retried with backoff; an outcome that delivered the object is
// returned as-is even if a losing probe failed.
func (c *Client) SelectAndFetch(ctx context.Context, obj Object, candidates []string) Outcome {
	for attempt := 0; ; attempt++ {
		actx, cancel := c.attemptCtx(ctx)
		out := core.SelectAndFetchCtx(actx, c.transport, obj, candidates, c.cfg)
		cancel()
		failed := errors.Is(out.Err, ErrAllPathsFailed) || out.Remainder.Err != nil
		if !failed || attempt >= c.retries || !retryable(ctx, out.Err) {
			return out
		}
		if !c.sleepBackoff(ctx, attempt+1) {
			return out
		}
	}
}

// Probe races an x-sized range request (the client's configured probe
// size) on the direct path and every candidate concurrently.
func (c *Client) Probe(ctx context.Context, obj Object, candidates []string) []ProbeResult {
	return core.ProbeCtx(ctx, c.transport, obj, candidates, c.cfg)
}

// ProbeSequential probes the direct path and each candidate one at a
// time, contention-free.
func (c *Client) ProbeSequential(ctx context.Context, obj Object, candidates []string) []ProbeResult {
	return core.ProbeSequentialCtx(ctx, c.transport, obj, candidates, c.cfg)
}

// Download fetches obj adaptively (segmented fetches, periodic re-races,
// failover) under ctx. With WithRetry, a download that failed outright
// is retried from the beginning with backoff.
func (c *Client) Download(ctx context.Context, obj Object, candidates []string) (DownloadResult, error) {
	dl := &core.Downloader{
		Transport:  c.transport,
		ProbeBytes: c.cfg.ProbeBytes,
		Rule:       c.cfg.Rule,
		Observer:   c.cfg.Observer,
	}
	for attempt := 0; ; attempt++ {
		actx, cancel := c.attemptCtx(ctx)
		res, err := dl.DownloadCtx(actx, obj, candidates)
		cancel()
		if err == nil || attempt >= c.retries || !retryable(ctx, err) {
			return res, err
		}
		if !c.sleepBackoff(ctx, attempt+1) {
			return res, err
		}
	}
}

// Multipath stripes obj across the direct path and all candidates
// concurrently (Bullet-style work stealing) under ctx.
func (c *Client) Multipath(ctx context.Context, obj Object, candidates []string) (MultipathResult, error) {
	mp := &core.MultipathDownloader{Transport: c.transport, Observer: c.cfg.Observer}
	actx, cancel := c.attemptCtx(ctx)
	defer cancel()
	return mp.DownloadCtx(actx, obj, candidates)
}

// SelectMonitored performs a probe-free transfer under ctx using the
// monitor's path table, feeding the outcome back into it.
func (c *Client) SelectMonitored(ctx context.Context, obj Object, candidates []string, m *Monitor) Outcome {
	actx, cancel := c.attemptCtx(ctx)
	defer cancel()
	return core.SelectMonitoredCtx(actx, c.transport, obj, candidates, m, c.cfg)
}

// Transport returns the transport the client is bound to.
func (c *Client) Transport() Transport { return c.transport }

// Metrics returns the client's built-in metrics collector, live: it keeps
// accumulating as the client runs.
func (c *Client) Metrics() *Metrics { return c.metrics }

// Observer returns the client's composed observer — the built-in
// metrics collector plus every WithObserver sink — for wiring into
// transports (RealTransport.Observer) or downloaders constructed
// outside the client, so they feed the same event stream.
func (c *Client) Observer() Observer { return c.cfg.Observer }

// Snapshot captures the client's metrics at this instant — selection and
// cancellation counts, per-path utilization tallies (the paper's §V
// metric), latency/throughput histograms — ready for JSON rendering.
func (c *Client) Snapshot() MetricsSnapshot { return c.metrics.Snapshot() }

// Spans returns the span collector installed with WithSpans, or nil when
// tracing is off.
func (c *Client) Spans() *SpanCollector { return c.spans }

// HealthMonitor returns the monitor installed with WithHealthMonitor,
// or nil when health tracking is off.
func (c *Client) HealthMonitor() *HealthMonitor { return c.health }

// PathHealth captures the damped per-path health view — rolling-window
// success/latency/throughput aggregates, score, and state — for every
// path the client has exercised. Empty when no monitor is attached.
func (c *Client) PathHealth() HealthSnapshot {
	if c.health == nil {
		return HealthSnapshot{}
	}
	return c.health.Snapshot()
}

// CacheStats captures the client-side object cache's counters — hits,
// misses, fills, evictions, byte gauges, and the derived warmth score —
// when the client wraps a *RealTransport built with WithCacheSize. The
// zero CacheStats (capacity 0) otherwise.
func (c *Client) CacheStats() CacheStats {
	if rt, ok := c.transport.(*realnet.Transport); ok {
		return rt.CacheStats()
	}
	return CacheStats{}
}
