package repro_test

import (
	"context"
	"testing"
	"time"

	"repro"
	"repro/internal/faultproxy"
	"repro/internal/relay"
)

// TestChaosClientRoutesAroundFaultyRelay is the end-to-end chaos check
// on the full client stack: a relay path that resets every transfer
// mid-stream must lose the probe race round after round, fold as a
// transport failure (never a hang, never a spurious success) until the
// health monitor marks it down — and once the fault lifts, clean rounds
// must walk it back to healthy. Throughout, every operation completes
// promptly over the direct path: chaos on one candidate never wedges
// the client.
func TestChaosClientRoutesAroundFaultyRelay(t *testing.T) {
	origin := relay.NewOrigin()
	origin.Put("big.bin", 96_000)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()

	r := &relay.Relay{}
	rl, err := r.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rl.Close()

	// The fault proxy sits on the client->relay leg: every connection
	// through it is reset 2 KB into the response body, mid-probe.
	px, err := faultproxy.Listen("127.0.0.1:0", rl.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	px.SetSchedule(faultproxy.MustParse("conn=* phase=body@2048 reset"))

	tr := &repro.RealTransport{
		Servers: map[string]string{"origin": ol.Addr().String()},
		Relays:  map[string]string{"r": px.Addr()},
		Verify:  true,
	}
	defer tr.Close()

	hm := repro.NewHealthMonitor(repro.HealthConfig{Window: 3, Buckets: 12, Hysteresis: 2, MinDwell: 0.3})
	client := repro.New(tr,
		repro.WithProbeBytes(32_000),
		repro.WithRule(repro.MaxThroughput),
		repro.WithTimeout(3*time.Second),
		repro.WithHealthMonitor(hm))
	tr.Observer = client.Observer()

	obj := repro.Object{Server: "origin", Name: "big.bin", Size: 96_000}
	round := func() time.Duration {
		start := time.Now()
		out := client.SelectAndFetch(context.Background(), obj, []string{"r"})
		elapsed := time.Since(start)
		// The object itself must always arrive: the reset relay loses
		// the race, the direct path delivers.
		if out.Remainder.Err != nil {
			t.Fatalf("fetch failed despite a healthy direct path: %v", out.Remainder.Err)
		}
		if elapsed > 3500*time.Millisecond {
			t.Fatalf("round took %v: a mid-stream reset wedged the operation", elapsed)
		}
		return elapsed
	}

	// Fault phase: keep operating until the monitor walks the chaotic
	// relay out of service.
	deadline := time.Now().Add(15 * time.Second)
	for hm.State("r") != repro.HealthDown {
		if time.Now().After(deadline) {
			ph, _ := hm.PathHealth("r")
			t.Fatalf("relay path never went down under resets: %+v", ph)
		}
		round()
	}
	ph, ok := hm.PathHealth("r")
	if !ok {
		t.Fatal("no health entry for the relay path")
	}
	if ph.Ok != 0 {
		t.Fatalf("mid-stream resets folded %d OK samples on the relay path", ph.Ok)
	}
	if hm.State("direct") != repro.HealthHealthy {
		t.Fatalf("direct path state = %v while carrying every fetch", hm.State("direct"))
	}

	// Heal: the proxy forwards cleanly again; continued operation must
	// recover the verdict within a few windows.
	px.SetSchedule(nil)
	deadline = time.Now().Add(15 * time.Second)
	for hm.State("r") != repro.HealthHealthy {
		if time.Now().After(deadline) {
			ph, _ := hm.PathHealth("r")
			t.Fatalf("relay path never recovered after heal: %+v", ph)
		}
		round()
	}
}
