// Command fetch is the indirect-routing client: it probes the direct path
// and every given relay with an initial range request, selects the path
// with the best probe, downloads the remainder over it, and reports the
// per-path probe throughputs and the selection. Ctrl-C cancels the
// transfer (closing its connections); -timeout bounds it.
//
// Usage (against origind + one or more relayd instances):
//
//	fetch -origin 127.0.0.1:8080 -object large.bin -size 4000000 \
//	      -relay campus=127.0.0.1:8081 -relay isp=127.0.0.1:8082
//
// With -registry the relay set is discovered instead of listed by hand
// (comma-separate peered registryd addresses to fail over when one is
// down); -top K narrows discovery to the K relays the registry ranks
// healthiest (the paper's result: ~10 of 35 candidates capture nearly
// all gain). Relays the registry has marked down are excluded.
// -paths attaches a health monitor to the client and prints the per-path
// health snapshot (state, score, throughput EWMA) after the transfer.
// -fleet <addr> skips the transfer entirely and prints the merged fleet
// snapshot (per-relay freshness, fleet totals, worst paths) from an
// aggregating registryd's metrics address.
// -bundle <relay> likewise skips the transfer and pulls the named
// relay's anomaly debug bundles through the metrics address it reported
// to the registry ("all" sweeps every relay in the fleet; a literal
// host:port skips discovery); add -bundle-name to dump one bundle's
// full JSON.
// Result tables go to stdout; operational logging is structured (slog)
// on stderr — see -log-format, -log-level, and -log-components.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro"
	"repro/internal/daemon"
	"repro/internal/httpx"
	"repro/internal/obs/fleet"
	"repro/internal/obs/flight"
	"repro/internal/traceio"
)

// logger is the process-wide structured logger, set in main once the
// logging flags are parsed.
var logger *slog.Logger

// fatal logs an error and exits.
func fatal(msg string, args ...any) {
	logger.Error(msg, args...)
	os.Exit(1)
}

type relayList []string

func (r *relayList) String() string     { return strings.Join(*r, ",") }
func (r *relayList) Set(v string) error { *r = append(*r, v); return nil }

// mustOpen opens a span archive for merging; the process exits on error
// and the handle is released at exit.
func mustOpen(path string) *os.File {
	f, err := os.Open(path)
	if err != nil {
		fatal("opening span archive", "path", path, "err", err)
	}
	return f
}

// mergeSpanFiles loads and concatenates span archives (from fetch -spans
// or the daemons' -trace flags).
func mergeSpanFiles(paths []string) []repro.Span {
	var all []repro.Span
	for _, path := range paths {
		merged, comment, err := traceio.ReadSpans(mustOpen(path))
		if err != nil {
			fatal("merging span archive", "path", path, "err", err)
		}
		logger.Info("merged spans", "count", len(merged), "path", path, "comment", comment)
		all = append(all, merged...)
	}
	return all
}

// printStitched renders every trace in the span set as an indented
// cross-process timeline.
func printStitched(all []repro.Span) {
	for _, id := range repro.TraceIDs(all) {
		fmt.Print(repro.FormatTrace(id, repro.StitchTrace(id, all)))
	}
}

// printFleet pulls /debug/fleet from an aggregating registryd's metrics
// address and renders the whole-fleet view as a table.
func printFleet(ctx context.Context, addr string, timeout time.Duration) {
	status, _, body, err := httpx.Get(ctx, nil, addr, "/debug/fleet", nil, timeout)
	if err != nil {
		fatal("fleet snapshot failed", "addr", addr, "err", err)
	}
	if status != 200 {
		fatal("fleet snapshot failed", "addr", addr, "status", status,
			"hint", "is registryd running with -fleet-every?")
	}
	var snap fleet.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		fatal("decoding fleet snapshot", "addr", addr, "err", err)
	}
	fmt.Printf("fleet @ %s: %d relays (%d live, %d stale), %d scrapes (%d errors)\n",
		snap.Time.Format(time.RFC3339), len(snap.Relays), snap.Live, snap.Stale,
		snap.Scrapes, snap.ScrapeErrs)
	for _, rs := range snap.Relays {
		age := "never"
		if rs.AgeSeconds >= 0 {
			age = fmt.Sprintf("%.1fs", rs.AgeSeconds)
		}
		state := "live"
		if rs.Stale {
			state = "STALE"
		}
		health := "unreported"
		if rs.Health >= 0 {
			health = fmt.Sprintf("%.3f", rs.Health)
		}
		fmt.Printf("  %-12s %-21s %-5s age %-7s health %-10s %8.0f reqs %12.0f bytes  p99 %6.1fms\n",
			rs.Name, rs.Addr, state, age, health,
			rs.Requests, rs.BytesRelayed, rs.ForwardLatency.P99*1e3)
		if rs.Err != "" {
			fmt.Printf("  %-12s last scrape error: %s\n", "", rs.Err)
		}
	}
	fmt.Printf("totals (live): %.0f requests, %.0f bytes relayed, forward p50/p90/p99 %.1f/%.1f/%.1f ms\n",
		snap.Requests, snap.BytesRelayed,
		snap.ForwardLatency.P50*1e3, snap.ForwardLatency.P90*1e3, snap.ForwardLatency.P99*1e3)
	if len(snap.WorstPaths) > 0 {
		fmt.Printf("worst paths:\n")
		for _, wp := range snap.WorstPaths {
			fmt.Printf("  %-12s %-24s %-9s score %.3f  success %.3f  p99 %6.1fms\n",
				wp.Relay, wp.Path.Path, wp.Path.State, wp.Path.Score,
				wp.Path.SuccessRate, wp.Path.LatencyP99*1e3)
		}
	}
}

// bundleTarget is one daemon whose flight-recorder bundles -bundle
// pulls: a name for the report plus the metrics address to scrape.
type bundleTarget struct{ name, addr string }

// resolveBundleTargets turns the -bundle argument into metrics
// addresses: a literal host:port is used as-is; otherwise the registry
// is asked for the fleet and the argument names one relay — or "all"
// for every relay that reported a metrics address.
func resolveBundleTargets(ctx context.Context, arg, regAddr string, timeout time.Duration) []bundleTarget {
	if strings.Contains(arg, ":") {
		return []bundleTarget{{name: arg, addr: arg}}
	}
	if regAddr == "" {
		fatal("-bundle with a relay name needs -registry (or pass a metrics host:port)")
	}
	addrs := strings.Split(regAddr, ",")
	rc := repro.NewRegistryClient(addrs[0],
		repro.WithRegistryTimeout(timeout),
		repro.WithRegistryRetry(1, 200*time.Millisecond),
		repro.WithRegistryFallbackPeers(addrs[1:]...))
	defer rc.Close()
	// LISTH, not LIST: only the ranked listing carries the metrics
	// address a relay's heartbeat advertises.
	entries, err := rc.ListRanked(ctx, 0)
	if err != nil {
		fatal("registry discovery failed", "registry", regAddr, "err", err)
	}
	var targets []bundleTarget
	for _, e := range entries {
		if arg != "all" && e.Name != arg {
			continue
		}
		if e.MetricsAddr == "" {
			logger.Warn("relay reports no metrics address", "relay", e.Name)
			continue
		}
		targets = append(targets, bundleTarget{name: e.Name, addr: e.MetricsAddr})
	}
	if len(targets) == 0 {
		fatal("no matching relay with a metrics address", "bundle", arg, "registry", regAddr)
	}
	return targets
}

// printBundles pulls /debug/bundle from each target's flight recorder:
// the retained-bundle listing per relay, or — with name set — one full
// bundle as raw JSON (fleet-wide, the first relay holding it wins).
func printBundles(ctx context.Context, targets []bundleTarget, name string, timeout time.Duration) {
	if name != "" {
		for _, t := range targets {
			status, _, body, err := httpx.Get(ctx, nil, t.addr, "/debug/bundle?name="+name, nil, timeout)
			if err != nil || status != 200 {
				continue
			}
			os.Stdout.Write(body)
			return
		}
		fatal("no target holds bundle", "name", name)
	}
	for _, t := range targets {
		status, _, body, err := httpx.Get(ctx, nil, t.addr, "/debug/bundle", nil, timeout)
		if err != nil {
			fatal("bundle listing failed", "target", t.addr, "err", err)
		}
		if status != 200 {
			fatal("bundle listing failed", "target", t.addr, "status", status,
				"hint", "is the daemon running with its flight recorder on?")
		}
		var listing struct {
			Stats   flight.EngineStats  `json:"stats"`
			Bundles []flight.BundleInfo `json:"bundles"`
		}
		if err := json.Unmarshal(body, &listing); err != nil {
			fatal("decoding bundle listing", "target", t.addr, "err", err)
		}
		fmt.Printf("%s (%s): %d bundles  fired %d  suppressed %d  dropped %d  write-failures %d\n",
			t.name, t.addr, len(listing.Bundles), listing.Stats.Fired,
			listing.Stats.Suppressed, listing.Stats.Dropped, listing.Stats.WriteFailures)
		for _, b := range listing.Bundles {
			fmt.Printf("  %-32s %-14s path %-24s at %8.1fs  %3d events  %d traces\n",
				b.Name, b.Reason, b.Path, b.At, b.Events, b.TraceCount)
		}
	}
}

// progressPrinter renders a live progress line from the streaming
// transport's per-chunk events. Probes are over in well under a refresh
// interval, so only transfers larger than minTotal (the remainder) are
// shown, throttled to one repaint per 200 ms plus a final 100% line.
type progressPrinter struct {
	repro.BaseObserver
	minTotal int64
	mu       sync.Mutex
	last     time.Time
}

func (p *progressPrinter) TransferProgress(e repro.ProgressEvent) {
	if e.Total < p.minTotal {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	done := e.Delivered >= e.Total
	now := time.Now()
	if !done && now.Sub(p.last) < 200*time.Millisecond {
		return
	}
	p.last = now
	fmt.Printf("\r  %-12s %6.1f%%  %12d / %d bytes",
		e.Path.Label(), 100*float64(e.Delivered)/float64(e.Total), e.Delivered, e.Total)
	if done {
		fmt.Println()
	}
}

func main() {
	var relays relayList
	origin := flag.String("origin", "127.0.0.1:8080", "origin server address")
	object := flag.String("object", "large.bin", "object name")
	size := flag.Int64("size", 0, "object size in bytes (0 = discover via HEAD)")
	probe := flag.Int64("probe", repro.DefaultProbeBytes, "probe size x in bytes")
	verify := flag.Bool("verify", true, "verify synthetic content")
	adaptive := flag.Bool("adaptive", false, "download adaptively: segmented fetches with periodic re-races and failover")
	segment := flag.Int64("segment", 1_000_000, "adaptive mode: segment size in bytes")
	timeout := flag.Duration("timeout", 0, "overall transfer deadline (0 = none)")
	retries := flag.Int("retries", 0, "retry a transfer that delivered nothing up to N times")
	regAddr := flag.String("registry", "", "discover relays from this registry; comma-separate peered registries to fail over (in addition to -relay flags)")
	regTimeout := flag.Duration("registry-timeout", 5*time.Second, "per-request registry deadline")
	topK := flag.Int("top", 0, "discover only the K healthiest relays, ranked by the registry (0 = all)")
	showStats := flag.Bool("stats", false, "print the metrics snapshot (JSON) after the transfer")
	showPaths := flag.Bool("paths", false, "track path health during the transfer and print the snapshot (JSON) after")
	showProgress := flag.Bool("progress", false, "print live transfer progress for the remainder")
	traceFile := flag.String("trace", "", "write the observer event trace as JSONL to this file")
	spanFile := flag.String("spans", "", "record distributed-tracing spans and write them as JSONL to this file")
	stitch := flag.Bool("stitch", false, "print the stitched span timeline after the transfer (implies span recording)")
	fleetAddr := flag.String("fleet", "", "print the fleet snapshot from this registryd metrics address and exit")
	bundleRelay := flag.String("bundle", "", "print debug bundles from this relay (name via -registry, \"all\" for the fleet, or a metrics host:port) and exit")
	bundleName := flag.String("bundle-name", "", "with -bundle: print this one bundle as full JSON instead of the listing")
	var mergeFiles relayList
	flag.Var(&mergeFiles, "merge", "span archive (from relayd/origind -trace) to merge into the stitched timeline (repeatable)")
	flag.Var(&relays, "relay", "relay spec name=addr (repeatable)")
	mkLog := daemon.LogFlags()
	flag.Parse()
	logger = mkLog("fetch")

	// Fleet browsing: ask an aggregating registryd for its merged view of
	// the relay fleet instead of transferring anything.
	if *fleetAddr != "" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		printFleet(ctx, *fleetAddr, *regTimeout)
		return
	}

	// Bundle browsing: pull the flight recorder's anomaly bundles off a
	// relay (or the whole fleet) instead of transferring anything.
	if *bundleRelay != "" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		targets := resolveBundleTargets(ctx, *bundleRelay, *regAddr, *regTimeout)
		printBundles(ctx, targets, *bundleName, *regTimeout)
		return
	}

	// Offline stitching: with no object to transfer, merge already-written
	// span archives (the client's -spans file plus the daemons' shutdown
	// archives) and print the cross-process timelines. No network touched.
	if *object == "" {
		if !*stitch || len(mergeFiles) == 0 {
			fatal(`-object "" needs -stitch and at least one -merge archive`)
		}
		printStitched(mergeSpanFiles(mergeFiles))
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	tr := &repro.RealTransport{
		Servers: map[string]string{"origin": *origin},
		Relays:  map[string]string{},
		Verify:  *verify,
	}
	var candidates []string
	for _, spec := range relays {
		name, addr, ok := strings.Cut(spec, "=")
		if !ok {
			fatal("bad -relay spec (want name=addr)", "spec", spec)
		}
		tr.Relays[name] = addr
		candidates = append(candidates, name)
	}
	if *regAddr != "" {
		// Health-ranked discovery narrows the probe race to the relays the
		// registry believes are healthiest. The first address is the
		// primary; any further comma-separated addresses are peered
		// registries tried on failure, so discovery survives losing one.
		addrs := strings.Split(*regAddr, ",")
		rc := repro.NewRegistryClient(addrs[0],
			repro.WithRegistryTimeout(*regTimeout),
			repro.WithRegistryRetry(1, 200*time.Millisecond),
			repro.WithRegistryFallbackPeers(addrs[1:]...))
		discovered, err := repro.DiscoverRelays(ctx, rc, *topK)
		rc.Close()
		if err != nil {
			fatal("registry discovery failed", "registry", *regAddr, "err", err)
		}
		for name, addr := range discovered {
			if _, dup := tr.Relays[name]; dup {
				continue
			}
			tr.Relays[name] = addr
			candidates = append(candidates, name)
		}
		logger.Info("discovered relays", "count", len(discovered), "registry", *regAddr,
			"ranked", *topK > 0)
	}

	if *size == 0 {
		discovered, err := tr.StatCtx(ctx, "origin", *object)
		if err != nil {
			fatal("size discovery failed", "object", *object, "err", err)
		}
		*size = discovered
		logger.Info("discovered object size", "object", *object, "bytes", *size)
	}
	obj := repro.Object{Server: "origin", Name: *object, Size: *size}

	opts := []repro.Option{repro.WithProbeBytes(*probe)}
	if *timeout > 0 {
		opts = append(opts, repro.WithTimeout(*timeout))
	}
	if *retries > 0 {
		opts = append(opts, repro.WithRetry(*retries, 200*time.Millisecond))
	}
	var trace *repro.Tracer
	if *traceFile != "" {
		trace = repro.NewTracer(4096)
		opts = append(opts, repro.WithObserver(trace))
	}
	var spans *repro.SpanCollector
	if *spanFile != "" || *stitch || len(mergeFiles) > 0 {
		spans = repro.NewSpanCollector(0)
		opts = append(opts, repro.WithSpans(spans))
	}
	if *showPaths {
		opts = append(opts, repro.WithHealthMonitor(
			repro.NewHealthMonitor(repro.HealthConfig{Clock: repro.HealthWallClock()})))
	}
	if *showProgress {
		opts = append(opts, repro.WithObserver(&progressPrinter{minTotal: *probe + 1}))
	}
	client := repro.New(tr, opts...)
	// The transport reports retries and aborts into the same stream the
	// engine feeds, so the snapshot covers the whole pipeline.
	tr.Observer = client.Observer()

	// reportObs emits the observability artifacts the flags asked for.
	reportObs := func() {
		if *showStats {
			fmt.Printf("metrics snapshot:\n%s\n", client.Snapshot().JSON())
		}
		if *showPaths {
			fmt.Printf("path health:\n%s\n", client.PathHealth().JSON())
		}
		if trace != nil {
			f, err := os.Create(*traceFile)
			if err != nil {
				fatal("creating trace file", "path", *traceFile, "err", err)
			}
			werr := traceio.WriteEvents(f, "fetch "+*object, trace.Events())
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				fatal("writing trace", "path", *traceFile, "err", werr)
			}
			logger.Info("wrote event trace", "count", len(trace.Events()), "path", *traceFile)
		}
		if spans == nil {
			return
		}
		if *spanFile != "" {
			f, err := os.Create(*spanFile)
			if err != nil {
				fatal("creating span file", "path", *spanFile, "err", err)
			}
			werr := traceio.WriteSpans(f, "fetch "+*object, spans.Spans())
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				fatal("writing spans", "path", *spanFile, "err", werr)
			}
			logger.Info("wrote spans", "count", len(spans.Spans()), "path", *spanFile)
		}
		if *stitch {
			// Merge the daemons' archives (if given) with the client's own
			// spans, then render each trace as one cross-process timeline.
			printStitched(append(spans.Spans(), mergeSpanFiles(mergeFiles)...))
		}
	}

	if *adaptive {
		dl := &repro.Downloader{
			Transport:    tr,
			ProbeBytes:   *probe,
			SegmentBytes: *segment,
			Observer:     client.Observer(),
		}
		res, err := dl.DownloadCtx(ctx, obj, candidates)
		if err != nil {
			fatal("adaptive download failed", "err", err)
		}
		fmt.Printf("segments:\n")
		for _, s := range res.Segments {
			kind := "fetch"
			if s.Raced {
				kind = "race "
			}
			fmt.Printf("  %s %-20s [%9d +%8d]  %6.2f Mb/s\n",
				kind, s.Path, s.Offset, s.Bytes, s.Throughput/1e6)
		}
		fmt.Printf("switches: %d  failovers: %d  final path: %s\n",
			res.Switches, res.Failovers, res.FinalPath())
		fmt.Printf("downloaded %d bytes in %.3fs -> %.2f Mb/s overall\n",
			obj.Size, res.Duration(), res.Throughput()/1e6)
		reportObs()
		return
	}

	out := client.SelectAndFetch(ctx, obj, candidates)
	if out.Err != nil {
		switch {
		case errors.Is(out.Err, repro.ErrCanceled):
			fatal("transfer canceled", "err", out.Err)
		case errors.Is(out.Err, repro.ErrProbeTimeout):
			fatal("transfer deadline exceeded", "err", out.Err)
		case errors.Is(out.Err, repro.ErrAllPathsFailed):
			fatal("every path failed", "err", out.Err)
		default:
			fatal("transfer failed", "err", out.Err)
		}
	}

	fmt.Printf("probes (%d bytes each):\n", *probe)
	for _, p := range out.Probes {
		fmt.Printf("  %-20s %8.2f Mb/s  (%.3fs)\n", p.Path, p.Throughput()/1e6, p.Duration())
	}
	fmt.Printf("selected: %s\n", out.Selected)
	fmt.Printf("downloaded %d bytes in %.3fs -> %.2f Mb/s overall\n",
		obj.Size, out.Duration(), out.Throughput()/1e6)
	reportObs()
}
