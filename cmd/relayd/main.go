// Command relayd runs an indirect-routing relay: the intermediate-node
// forwarding service that accepts absolute-form HTTP GETs, contacts the
// origin, and splices the (ranged) response back to the client.
//
// Usage:
//
//	relayd -listen 127.0.0.1:8081 -metrics 127.0.0.1:9081
//
// With -metrics set, live counters (requests handled, bytes relayed —
// the raw material of the paper's §V utilization analysis) are served
// as JSON on /debug/vars, Prometheus text format on /metrics (including
// the forward-latency histogram), and /healthz for liveness. With
// -trace set, the relay records forward/dial/ttfb/stream spans per
// request — continuing the client's x-trace — and archives them as
// JSONL on shutdown. -pprof serves net/http/pprof on a separate address.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/httpx"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/relay"
	"repro/internal/traceio"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8081", "listen address")
	metrics := flag.String("metrics", "", "metrics endpoint address (empty = off)")
	statsEvery := flag.Duration("stats", 30*time.Second, "stats print interval (0 = off)")
	regAddr := flag.String("registry", "", "registry address to self-register with (optional)")
	name := flag.String("name", "relay", "relay name used when registering")
	ttl := flag.Duration("ttl", time.Minute, "registration TTL")
	tracePath := flag.String("trace", "", "write span archive (JSONL) here on shutdown (empty = tracing off)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (empty = off)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	r := &relay.Relay{}
	var spans *obs.SpanCollector
	if *tracePath != "" {
		spans = obs.NewSpanCollector(0)
		r.Spans = spans
	}
	l, err := r.ServeAddr(*listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("relayd listening on %s\n", l.Addr())

	if *metrics != "" {
		mux := httpx.NewVarsMux(func() any {
			return map[string]any{
				"requests":      r.Requests.Load(),
				"bytes_relayed": r.BytesRelayed.Load(),
				"spans_seen":    spans.Seen(),
				"spans_dropped": spans.Dropped(),
			}
		})
		mux.Handle("/metrics", httpx.PromHandler(func() []byte {
			p := obs.NewProm()
			p.Counter("relay_requests_total", "Requests handled, including failures.", float64(r.Requests.Load()))
			p.Counter("relay_bytes_relayed_total", "Response-body bytes forwarded to clients.", float64(r.BytesRelayed.Load()))
			p.Counter("relay_spans_total", "Tracing spans recorded.", float64(spans.Seen()))
			p.Histogram("relay_forward_latency_seconds", "Request forwarding times.", r.LatencySnapshot())
			return p.Bytes()
		}))
		go func() {
			if err := httpx.Serve(ctx, mux, *metrics); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
		fmt.Printf("metrics on http://%s/debug/vars and /metrics\n", *metrics)
	}
	if *pprofAddr != "" {
		go func() {
			if err := httpx.ServePprof(ctx, *pprofAddr); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
		fmt.Printf("pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}

	if *regAddr != "" {
		hbStop := make(chan struct{})
		defer close(hbStop)
		if err := registry.Heartbeat(*regAddr, *name, l.Addr().String(), *ttl, hbStop); err != nil {
			log.Fatalf("registration failed: %v", err)
		}
		fmt.Printf("registered as %q with %s (ttl %v)\n", *name, *regAddr, *ttl)
	}

	// The stats printer stops with the signal context rather than ranging
	// over the ticker forever, so it can't interleave a periodic line with
	// (or outlive) the shutdown summary below.
	var statsDone chan struct{}
	if *statsEvery > 0 {
		ticker := time.NewTicker(*statsEvery)
		statsDone = make(chan struct{})
		go func() {
			defer close(statsDone)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					fmt.Printf("relayd: %d requests, %d bytes relayed\n",
						r.Requests.Load(), r.BytesRelayed.Load())
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	<-ctx.Done()
	if statsDone != nil {
		<-statsDone
	}
	fmt.Printf("relayd: shutting down (%d requests, %d bytes relayed)\n",
		r.Requests.Load(), r.BytesRelayed.Load())
	l.Close()
	if *tracePath != "" {
		if err := writeSpans(*tracePath, spans); err != nil {
			log.Printf("span archive: %v", err)
		} else {
			fmt.Printf("relayd: %d spans archived to %s\n", len(spans.Spans()), *tracePath)
		}
	}
}

func writeSpans(path string, spans *obs.SpanCollector) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := traceio.WriteSpans(f, "relayd", spans.Spans()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
