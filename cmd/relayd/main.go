// Command relayd runs an indirect-routing relay: the intermediate-node
// forwarding service that accepts absolute-form HTTP GETs, contacts the
// origin, and splices the (ranged) response back to the client.
//
// Usage:
//
//	relayd -listen 127.0.0.1:8081 -metrics 127.0.0.1:9081 \
//	       -cache-bytes 268435456 -cache-ttl 10m
//
// With -cache-bytes set, the relay keeps a bounded range-aware object
// cache: response ranges fill it as they stream through, repeat
// requests covered by cached spans are answered from memory (x-cache:
// hit), concurrent misses for the same range collapse into one origin
// fetch, and cached content is re-verified against the synthetic
// catalog before every serve. Cache warmth folds into the health score
// self-reported to the registry, so LISTH ranks warm relays first.
//
// With -metrics set, live counters (requests handled, bytes relayed —
// the raw material of the paper's §V utilization analysis) are served
// as JSON on /debug/vars, Prometheus text format on /metrics (including
// the forward-latency histogram and per-origin path-health gauges),
// per-path health as JSON on /debug/paths, SLO burn windows on
// /debug/slo, cache counters on /debug/cache (with -cache-bytes set),
// liveness on /healthz, and readiness on /readyz (the
// listener must be up and — when -registry is set — the registry still
// accepting heartbeats). With -trace set, the relay records
// forward/dial/ttfb/stream spans per request — continuing the client's
// x-trace — under tail-based retention (errored and slowest-decile
// traces always kept, boring ones sampled at -trace-keep within
// -trace-budget bytes) and archives the kept spans as JSONL on
// shutdown. When both -registry and -metrics are set, heartbeats carry
// the metrics address so the registry's fleet aggregator can scrape
// this relay. -pprof serves
// net/http/pprof on a separate address. Logging is structured (slog);
// see -log-format, -log-level, and -log-components.
//
// The flight recorder is on by default (-flight sets the wide-event
// ring size, 0 disables): every forward lands one canonical record at
// /debug/requests (JSONL-archivable via -flight-archive), in-flight
// forwards show at /debug/active, and SLO fast-burn crossings or
// health →down transitions snapshot a rate-limited debug bundle
// (-bundle-window) to /debug/bundle and -bundle-dir. -profile-dir
// turns on the continuous profiler: periodic CPU/heap/goroutine
// captures in a byte-bounded on-disk ring, with pprof labels on the
// forward hot path while it runs.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/daemon"
	"repro/internal/httpx"
	"repro/internal/objcache"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/registry"
	"repro/internal/relay"
	"repro/internal/traceio"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8081", "listen address")
	metrics := flag.String("metrics", "", "metrics endpoint address (empty = off)")
	statsEvery := flag.Duration("stats", 30*time.Second, "stats log interval (0 = off)")
	regAddr := flag.String("registry", "", "registry address to self-register with; comma-separate peered registries to fail over (optional)")
	regTimeout := flag.Duration("registry-timeout", 5*time.Second, "per-request registry deadline")
	name := flag.String("name", "relay", "relay name used when registering")
	ttl := flag.Duration("ttl", time.Minute, "registration TTL")
	tracePath := flag.String("trace", "", "write span archive (JSONL) here on shutdown (empty = tracing off)")
	traceBudget := flag.Int("trace-budget", 1<<20, "tail-retention byte budget for kept traces")
	traceKeep := flag.Float64("trace-keep", 0.1, "probability a boring (no-error, not-slow) trace is kept")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (empty = off)")
	flightRing := flag.Int("flight", 512, "flight-recorder wide-event ring size (0 = recorder off)")
	flightArchive := flag.String("flight-archive", "", "append wide events as JSONL here (empty = no archive)")
	profileDir := flag.String("profile-dir", "", "continuous-profiler capture directory (empty = profiler off)")
	profileEvery := flag.Duration("profile-every", 30*time.Second, "continuous-profiler capture cadence")
	profileMax := flag.Int64("profile-max-bytes", 8<<20, "continuous-profiler on-disk ring budget")
	bundleDir := flag.String("bundle-dir", "", "persist anomaly debug bundles here (empty = in-memory only)")
	bundleWindow := flag.Duration("bundle-window", time.Minute, "per-path rate limit between debug bundles")
	cacheBytes := flag.Int64("cache-bytes", 0, "object cache capacity in bytes (0 = caching off)")
	cacheTTL := flag.Duration("cache-ttl", 0, "expire cached spans this long after fill (0 = keep until evicted)")
	upstreamStall := flag.Duration("upstream-stall", 30*time.Second, "fail a forward whose origin goes silent this long mid-response (0 = no guard)")
	mkLog := daemon.LogFlags()
	flag.Parse()
	logger := mkLog("relayd")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The flight-recorder pieces are built before the relay so the health
	// and SLO trigger hooks can close over the engine variable; the engine
	// itself is assigned below, before the listener starts, so no traffic
	// can fire a trigger against a half-built engine.
	var engine *flight.Engine
	var rec *flight.Recorder
	var archive *os.File
	if *flightRing > 0 {
		fcfg := flight.Config{Ring: *flightRing}
		if *flightArchive != "" {
			f, err := os.Create(*flightArchive)
			if err != nil {
				logger.Error("flight archive failed", "path", *flightArchive, "err", err)
				os.Exit(1)
			}
			archive, fcfg.Archive = f, f
		}
		rec = flight.NewRecorder(fcfg)
	}
	var prof *flight.Profiler
	if *profileDir != "" {
		p, err := flight.NewProfiler(flight.ProfilerConfig{
			Dir: *profileDir, Every: *profileEvery, MaxBytes: *profileMax,
		})
		if err != nil {
			logger.Error("profiler failed", "dir", *profileDir, "err", err)
			os.Exit(1)
		}
		prof = p
		prof.Start()
		defer prof.Stop()
		logger.Info("profiler running", "dir", *profileDir, "every", *profileEvery)
	}

	slo := obs.NewSLOTracker(obs.SLOConfig{
		OnFastBurn: func(path string, burn float64) { engine.FireBurn(path, burn) },
	})
	var spans *obs.SpanCollector
	if *tracePath != "" {
		// Tail-based retention instead of the blind ring: error-class and
		// slowest-decile traces always survive, boring ones draw against
		// -trace-keep, all within -trace-budget bytes.
		spans = obs.NewTailSpanCollector(obs.TailConfig{
			ByteBudget: *traceBudget,
			KeepProb:   *traceKeep,
		})
	}
	mon := obs.NewHealthMonitor(obs.HealthConfig{
		Clock: obs.WallClock(), SLO: slo,
		OnTransition: func(path string, tr obs.HealthTransition) { engine.FireHealth(path, tr) },
	})
	r := relay.New(
		relay.WithHealthMonitor(mon),
		relay.WithSpans(spans),
		relay.WithCache(*cacheBytes),
		relay.WithCacheTTL(*cacheTTL),
		relay.WithVerifier(relay.VerifyRange),
		relay.WithUpstreamStall(*upstreamStall),
		relay.WithFlight(rec),
	)
	if *cacheBytes > 0 {
		logger.Info("cache enabled", "capacity_bytes", *cacheBytes, "ttl", *cacheTTL)
	}
	if rec != nil {
		engine = flight.NewEngine(flight.TriggerConfig{
			Recorder: rec,
			Spans:    spans,
			Profiler: prof,
			Dir:      *bundleDir,
			Window:   bundleWindow.Seconds(),
			Metrics:  func() []byte { return metricsPage(r, mon, slo, spans) },
		})
		defer engine.Close()
		logger.Info("flight recorder on", "ring", *flightRing, "archive", *flightArchive,
			"bundle_dir", *bundleDir)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		logger.Error("listen failed", "addr", *listen, "err", err)
		os.Exit(1)
	}
	var listenerUp atomic.Bool
	listenerUp.Store(true)
	go func() {
		defer listenerUp.Store(false)
		if err := r.Serve(l); err != nil {
			logger.Error("serve failed", "err", err)
		}
	}()
	logger.Info("listening", "addr", l.Addr().String())

	ready := httpx.NewReady()
	ready.AddLive("listener", func() error {
		if !listenerUp.Load() {
			return errors.New("listener closed")
		}
		return nil
	})

	var hb *registry.HeartbeatState
	if *regAddr != "" {
		// Heartbeats go through a pooled client: steady state is one
		// round trip on a held-open connection, each tick re-resolving
		// through the client (transparent redial, fallback peers) so one
		// refused connection doesn't burn a tick. With peered registries
		// listed, a heartbeat landing on either converges on both.
		addrs := strings.Split(*regAddr, ",")
		rc := registry.NewClient(addrs[0],
			registry.WithTimeout(*regTimeout),
			registry.WithPooledConn(),
			registry.WithFallbackPeers(addrs[1:]...))
		defer rc.Close()
		// The heartbeat advertises the metrics address so the registry's
		// fleet aggregator knows where to scrape this relay.
		hb, err = rc.StartHeartbeatFull(ctx, *name, l.Addr().String(), *metrics, *ttl,
			aggregateHealth(r.Health, r.Cache()))
		if err != nil {
			logger.Error("registration failed", "registry", *regAddr, "err", err)
			os.Exit(1)
		}
		ready.AddReady("registry", func() error {
			if hb.OK() {
				return nil
			}
			return fmt.Errorf("heartbeat failing: %v (last ok %s)", hb.Err(),
				hb.LastOK().Format(time.RFC3339))
		})
		logger.Info("registered", "name", *name, "registry", *regAddr, "ttl", *ttl)
	}

	d := &daemon.Daemon{
		Prefix: "relay",
		Vars: func() any {
			v := map[string]any{
				"requests":      r.Requests.Load(),
				"bytes_relayed": r.BytesRelayed.Load(),
				"spans_seen":    spans.Seen(),
				"spans_dropped": spans.Dropped(),
			}
			if ts, ok := spans.TailStats(); ok {
				v["trace_tail"] = ts
			}
			if hb != nil {
				v["registry_ok"] = hb.OK()
				v["registry_last_ok"] = hb.LastOK().Format(time.RFC3339)
			}
			if c := r.Cache(); c != nil {
				v["cache"] = c.Stats()
			}
			if rec != nil {
				v["flight"] = map[string]any{
					"seen":            rec.Seen(),
					"dropped":         rec.Dropped(),
					"archive_dropped": rec.ArchiveDropped(),
					"bundles":         engine.Stats(),
				}
			}
			if prof != nil {
				v["profiler"] = map[string]any{
					"cycles": prof.Cycles(), "failures": prof.Failures(),
					"disk_bytes": prof.DiskBytes(),
				}
			}
			return v
		},
		Prom: func(p *obs.Prom) {
			p.Counter("relay_requests_total", "Requests handled, including failures.", float64(r.Requests.Load()))
			p.Counter("relay_bytes_relayed_total", "Response-body bytes forwarded to clients.", float64(r.BytesRelayed.Load()))
			p.Counter("relay_spans_total", "Tracing spans recorded.", float64(spans.Seen()))
			if ts, ok := spans.TailStats(); ok {
				p.Counter("relay_traces_kept_total", "Traces the tail policy kept.", float64(ts.KeptTraces))
				p.Counter("relay_traces_dropped_total", "Traces the tail policy dropped.", float64(ts.DroppedTraces))
				p.Counter("relay_traces_forced_keep_total", "Traces force-kept (errored or slowest-decile roots).",
					float64(ts.ForcedError+ts.ForcedSlow))
				p.Gauge("relay_trace_bytes", "Estimated bytes of kept spans.", float64(ts.KeptBytes))
			}
			p.Histogram("relay_forward_latency_seconds", "Request forwarding times.", r.LatencySnapshot())
			if c := r.Cache(); c != nil {
				c.Stats().WriteProm(p, "relay")
			}
		},
		Health:  r.Health,
		SLO:     slo,
		Flight:  rec,
		Bundles: engine,
		Ready:   ready,
	}
	if c := r.Cache(); c != nil {
		d.Cache = func() any { return c.Stats() }
	}
	d.ServeMetrics(ctx, *metrics, logger)
	if *pprofAddr != "" {
		go func() {
			if err := httpx.ServePprof(ctx, *pprofAddr); err != nil {
				logger.Error("pprof server failed", "err", err)
			}
		}()
		logger.Info("pprof serving", "addr", *pprofAddr)
	}

	// The stats logger stops with the signal context rather than ranging
	// over the ticker forever, so it can't interleave a periodic line with
	// (or outlive) the shutdown summary below.
	var statsDone chan struct{}
	if *statsEvery > 0 {
		ticker := time.NewTicker(*statsEvery)
		statsDone = make(chan struct{})
		go func() {
			defer close(statsDone)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					logger.Info("stats", "requests", r.Requests.Load(),
						"bytes_relayed", r.BytesRelayed.Load())
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	<-ctx.Done()
	if statsDone != nil {
		<-statsDone
	}
	logger.Info("shutting down", "requests", r.Requests.Load(),
		"bytes_relayed", r.BytesRelayed.Load())
	l.Close()
	if *tracePath != "" {
		if err := writeSpans(*tracePath, spans); err != nil {
			logger.Error("span archive failed", "path", *tracePath, "err", err)
		} else {
			logger.Info("spans archived", "path", *tracePath, "count", len(spans.Spans()))
		}
	}
	if rec != nil {
		rec.CloseArchive()
	}
	if archive != nil {
		archive.Close()
	}
}

// metricsPage renders the /metrics families a debug bundle snapshots:
// the same health, SLO, and runtime views the live endpoint serves.
func metricsPage(r *relay.Relay, mon *obs.HealthMonitor, slo *obs.SLOTracker, spans *obs.SpanCollector) []byte {
	p := obs.NewProm()
	p.Counter("relay_requests_total", "Requests handled, including failures.", float64(r.Requests.Load()))
	p.Counter("relay_bytes_relayed_total", "Response-body bytes forwarded to clients.", float64(r.BytesRelayed.Load()))
	p.Counter("relay_spans_total", "Tracing spans recorded.", float64(spans.Seen()))
	p.Histogram("relay_forward_latency_seconds", "Request forwarding times.", r.LatencySnapshot())
	if c := r.Cache(); c != nil {
		c.Stats().WriteProm(p, "relay")
	}
	mon.Snapshot().WriteProm(p, "relay")
	now := -1.0
	if clk := mon.Config().Clock; clk != nil {
		now = clk()
	}
	slo.Snapshot(now).WriteProm(p, "relay")
	obs.WriteRuntimeProm(p)
	return p.Bytes()
}

// aggregateHealth folds the per-origin path scores into the single
// scalar the relay self-reports to the registry: the mean score, or
// unreported before any traffic (ranking a silent relay last is the
// conservative choice). With a cache attached, warmth scales the score
// within [warmthFloor, 1]: among equally healthy relays, LISTH ranks
// the ones that can serve from memory first, while even a stone-cold
// cache only discounts a healthy path by 1-warmthFloor.
func aggregateHealth(m *obs.HealthMonitor, c *objcache.Cache) func() float64 {
	return func() float64 {
		snap := m.Snapshot()
		if len(snap.Paths) == 0 {
			return registry.HealthUnreported
		}
		sum := 0.0
		for _, p := range snap.Paths {
			sum += p.Score
		}
		score := sum / float64(len(snap.Paths))
		if c != nil {
			score *= warmthFloor + (1-warmthFloor)*c.Stats().Warmth()
		}
		return score
	}
}

// warmthFloor bounds how much a cold cache can discount a relay's
// self-reported health: path quality stays the dominant term.
const warmthFloor = 0.85

func writeSpans(path string, spans *obs.SpanCollector) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := traceio.WriteSpans(f, "relayd", spans.Spans()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
