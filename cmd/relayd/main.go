// Command relayd runs an indirect-routing relay: the intermediate-node
// forwarding service that accepts absolute-form HTTP GETs, contacts the
// origin, and splices the (ranged) response back to the client.
//
// Usage:
//
//	relayd -listen 127.0.0.1:8081 -metrics 127.0.0.1:9081
//
// With -metrics set, live counters (requests handled, bytes relayed —
// the raw material of the paper's §V utilization analysis) are served
// as JSON on /debug/vars, with /healthz for liveness.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/httpx"
	"repro/internal/registry"
	"repro/internal/relay"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8081", "listen address")
	metrics := flag.String("metrics", "", "metrics endpoint address (empty = off)")
	statsEvery := flag.Duration("stats", 30*time.Second, "stats print interval (0 = off)")
	regAddr := flag.String("registry", "", "registry address to self-register with (optional)")
	name := flag.String("name", "relay", "relay name used when registering")
	ttl := flag.Duration("ttl", time.Minute, "registration TTL")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	r := &relay.Relay{}
	l, err := r.ServeAddr(*listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("relayd listening on %s\n", l.Addr())

	if *metrics != "" {
		mux := httpx.NewVarsMux(func() any {
			return map[string]any{
				"requests":      r.Requests.Load(),
				"bytes_relayed": r.BytesRelayed.Load(),
			}
		})
		go func() {
			if err := httpx.Serve(ctx, mux, *metrics); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
		fmt.Printf("metrics on http://%s/debug/vars\n", *metrics)
	}

	if *regAddr != "" {
		hbStop := make(chan struct{})
		defer close(hbStop)
		if err := registry.Heartbeat(*regAddr, *name, l.Addr().String(), *ttl, hbStop); err != nil {
			log.Fatalf("registration failed: %v", err)
		}
		fmt.Printf("registered as %q with %s (ttl %v)\n", *name, *regAddr, *ttl)
	}

	// The stats printer stops with the signal context rather than ranging
	// over the ticker forever, so it can't interleave a periodic line with
	// (or outlive) the shutdown summary below.
	var statsDone chan struct{}
	if *statsEvery > 0 {
		ticker := time.NewTicker(*statsEvery)
		statsDone = make(chan struct{})
		go func() {
			defer close(statsDone)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					fmt.Printf("relayd: %d requests, %d bytes relayed\n",
						r.Requests.Load(), r.BytesRelayed.Load())
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	<-ctx.Done()
	if statsDone != nil {
		<-statsDone
	}
	fmt.Printf("relayd: shutting down (%d requests, %d bytes relayed)\n",
		r.Requests.Load(), r.BytesRelayed.Load())
	l.Close()
}
