// Command registryd runs the relay registry: relays register themselves
// with TTL heartbeats, and clients discover the live relay set from it —
// the operational realization of the paper's "set of nodes available to a
// client".
//
// Usage:
//
//	registryd -listen 127.0.0.1:8070
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/registry"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8070", "listen address")
	statsEvery := flag.Duration("stats", 30*time.Second, "stats print interval (0 = off)")
	flag.Parse()

	var s registry.Server
	l, err := s.ServeAddr(*listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registryd listening on %s\n", l.Addr())

	if *statsEvery > 0 {
		ticker := time.NewTicker(*statsEvery)
		defer ticker.Stop()
		go func() {
			for range ticker.C {
				fmt.Printf("registryd: %d live relays\n", len(s.List()))
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	fmt.Println("registryd: shutting down")
	l.Close()
}
