// Command registryd runs the relay registry: relays register themselves
// with TTL heartbeats (optionally carrying a self-reported health score),
// and clients discover the live relay set from it — the operational
// realization of the paper's "set of nodes available to a client". The
// LISTH command returns the set ranked healthiest-first, so clients can
// probe only the healthiest K (the paper's knee is ~10 of 35).
//
// Usage:
//
//	registryd -listen 127.0.0.1:8070 -metrics 127.0.0.1:9070
//
// With -metrics set, live counters (registrations, list queries, live and
// down relay counts) are served as JSON on /debug/vars, Prometheus text
// format on /metrics (including the command-latency histogram), liveness
// on /healthz, and readiness on /readyz (the listener must be up).
// -pprof serves net/http/pprof on a separate address. Logging is
// structured (slog); see -log-format, -log-level, and -log-components.
package main

import (
	"context"
	"errors"
	"flag"
	"net"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/daemon"
	"repro/internal/httpx"
	"repro/internal/obs"
	"repro/internal/registry"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8070", "listen address")
	metrics := flag.String("metrics", "", "metrics endpoint address (empty = off)")
	statsEvery := flag.Duration("stats", 30*time.Second, "stats log interval (0 = off)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (empty = off)")
	mkLog := daemon.LogFlags()
	flag.Parse()
	logger := mkLog("registryd")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var s registry.Server
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		logger.Error("listen failed", "addr", *listen, "err", err)
		os.Exit(1)
	}
	var listenerUp atomic.Bool
	listenerUp.Store(true)
	go func() {
		defer listenerUp.Store(false)
		if err := s.Serve(l); err != nil {
			logger.Error("serve failed", "err", err)
		}
	}()
	logger.Info("listening", "addr", l.Addr().String())

	ready := httpx.NewReady()
	ready.AddLive("listener", func() error {
		if !listenerUp.Load() {
			return errors.New("listener closed")
		}
		return nil
	})

	d := &daemon.Daemon{
		Prefix: "registry",
		Vars: func() any {
			all := s.ListAll()
			down := 0
			for _, e := range all {
				if e.Down {
					down++
				}
			}
			return map[string]any{
				"registrations": s.Registrations.Load(),
				"lists":         s.Lists.Load(),
				"downs":         s.Downs.Load(),
				"live_relays":   len(all) - down,
				"down_relays":   down,
			}
		},
		Prom: func(p *obs.Prom) {
			p.Counter("registry_registrations_total", "Accepted REGISTER commands.", float64(s.Registrations.Load()))
			p.Counter("registry_lists_total", "LIST commands served.", float64(s.Lists.Load()))
			p.Counter("registry_downs_total", "Relays marked down after TTL lapse.", float64(s.Downs.Load()))
			p.Gauge("registry_live_relays", "Relays currently registered and unexpired.", float64(len(s.List())))
			p.Histogram("registry_command_latency_seconds", "Wire-command handling times.", s.LatencySnapshot())
		},
		Ready: ready,
	}
	d.ServeMetrics(ctx, *metrics, logger)
	if *pprofAddr != "" {
		go func() {
			if err := httpx.ServePprof(ctx, *pprofAddr); err != nil {
				logger.Error("pprof server failed", "err", err)
			}
		}()
		logger.Info("pprof serving", "addr", *pprofAddr)
	}

	// The stats logger stops with the signal context (ranging over the
	// ticker would leak the goroutine past shutdown).
	if *statsEvery > 0 {
		ticker := time.NewTicker(*statsEvery)
		go func() {
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					logger.Info("stats", "live_relays", len(s.List()),
						"registrations", s.Registrations.Load())
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	<-ctx.Done()
	logger.Info("shutting down", "registrations", s.Registrations.Load())
	l.Close()
}
