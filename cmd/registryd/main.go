// Command registryd runs the relay registry: relays register themselves
// with TTL heartbeats, and clients discover the live relay set from it —
// the operational realization of the paper's "set of nodes available to a
// client".
//
// Usage:
//
//	registryd -listen 127.0.0.1:8070 -metrics 127.0.0.1:9070
//
// With -metrics set, live counters (registrations, list queries, live
// relay count) are served as JSON on /debug/vars, Prometheus text format
// on /metrics (including the command-latency histogram), and /healthz
// for liveness. -pprof serves net/http/pprof on a separate address.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/httpx"
	"repro/internal/obs"
	"repro/internal/registry"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8070", "listen address")
	metrics := flag.String("metrics", "", "metrics endpoint address (empty = off)")
	statsEvery := flag.Duration("stats", 30*time.Second, "stats print interval (0 = off)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (empty = off)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var s registry.Server
	l, err := s.ServeAddr(*listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registryd listening on %s\n", l.Addr())

	if *metrics != "" {
		mux := httpx.NewVarsMux(func() any {
			return map[string]any{
				"registrations": s.Registrations.Load(),
				"lists":         s.Lists.Load(),
				"live_relays":   len(s.List()),
			}
		})
		mux.Handle("/metrics", httpx.PromHandler(func() []byte {
			p := obs.NewProm()
			p.Counter("registry_registrations_total", "Accepted REGISTER commands.", float64(s.Registrations.Load()))
			p.Counter("registry_lists_total", "LIST commands served.", float64(s.Lists.Load()))
			p.Gauge("registry_live_relays", "Relays currently registered and unexpired.", float64(len(s.List())))
			p.Histogram("registry_command_latency_seconds", "Wire-command handling times.", s.LatencySnapshot())
			return p.Bytes()
		}))
		go func() {
			if err := httpx.Serve(ctx, mux, *metrics); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
		fmt.Printf("metrics on http://%s/debug/vars and /metrics\n", *metrics)
	}
	if *pprofAddr != "" {
		go func() {
			if err := httpx.ServePprof(ctx, *pprofAddr); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
		fmt.Printf("pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}

	if *statsEvery > 0 {
		ticker := time.NewTicker(*statsEvery)
		defer ticker.Stop()
		go func() {
			for range ticker.C {
				fmt.Printf("registryd: %d live relays\n", len(s.List()))
			}
		}()
	}

	<-ctx.Done()
	fmt.Println("registryd: shutting down")
	l.Close()
}
