// Command registryd runs the relay registry: relays register themselves
// with TTL heartbeats, and clients discover the live relay set from it —
// the operational realization of the paper's "set of nodes available to a
// client".
//
// Usage:
//
//	registryd -listen 127.0.0.1:8070 -metrics 127.0.0.1:9070
//
// With -metrics set, live counters (registrations, list queries, live
// relay count) are served as JSON on /debug/vars, with /healthz for
// liveness.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/httpx"
	"repro/internal/registry"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8070", "listen address")
	metrics := flag.String("metrics", "", "metrics endpoint address (empty = off)")
	statsEvery := flag.Duration("stats", 30*time.Second, "stats print interval (0 = off)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var s registry.Server
	l, err := s.ServeAddr(*listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registryd listening on %s\n", l.Addr())

	if *metrics != "" {
		mux := httpx.NewVarsMux(func() any {
			return map[string]any{
				"registrations": s.Registrations.Load(),
				"lists":         s.Lists.Load(),
				"live_relays":   len(s.List()),
			}
		})
		go func() {
			if err := httpx.Serve(ctx, mux, *metrics); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
		fmt.Printf("metrics on http://%s/debug/vars\n", *metrics)
	}

	if *statsEvery > 0 {
		ticker := time.NewTicker(*statsEvery)
		defer ticker.Stop()
		go func() {
			for range ticker.C {
				fmt.Printf("registryd: %d live relays\n", len(s.List()))
			}
		}()
	}

	<-ctx.Done()
	fmt.Println("registryd: shutting down")
	l.Close()
}
