// Command registryd runs the relay registry: relays register themselves
// with TTL heartbeats (optionally carrying a self-reported health score),
// and clients discover the live relay set from it — the operational
// realization of the paper's "set of nodes available to a client". The
// LISTH command returns the set ranked healthiest-first, so clients can
// probe only the healthiest K (the paper's knee is ~10 of 35), and LISTD
// serves epoch-keyed deltas so steady-state clients re-pull only what
// changed instead of the full table.
//
// Usage:
//
//	registryd -listen 127.0.0.1:8070 -metrics 127.0.0.1:9070 \
//	    -peer 127.0.0.1:8071 -sync-every 5s
//
// The table stripes across -shards lock partitions, so heartbeat storms
// from very large relay fleets don't serialize on one mutex. Each -peer
// (repeatable) names another registryd to anti-entropy against: this
// instance pulls SYNCD deltas from every peer each -sync-every and
// merges them last-writer-wins, so a heartbeat reaching either peer is
// visible on both within one interval and discovery survives a
// registryd loss (point clients at both via fetch -registry a,b).
//
// With -metrics set, live counters (registrations, list and delta
// queries, epoch, live and down relay counts) are served as JSON on
// /debug/vars, shard occupancy and peer sync cursors on /debug/registry,
// Prometheus text format on /metrics (including the command-latency
// histogram), liveness on /healthz, and readiness on /readyz (the
// listener must be up). With -fleet-every set, the registry doubles as
// the fleet observability plane: every relay whose heartbeat carries a
// metrics address is scraped (/metrics and /debug/paths) each interval,
// and the merged fleet snapshot — per-relay freshness, summed request
// and byte counters, merged forward-latency histogram, and the top-K
// worst paths anywhere in the fleet — is served as JSON on /debug/fleet
// and as fleet_* families on /metrics. /debug/stack serves a plain-text
// goroutine dump even with -pprof off. -pprof serves net/http/pprof on
// a separate address. Logging is structured (slog); see -log-format,
// -log-level, and -log-components.
package main

import (
	"context"
	"errors"
	"flag"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/daemon"
	"repro/internal/httpx"
	"repro/internal/obs"
	"repro/internal/obs/fleet"
	"repro/internal/registry"
)

// peerList collects repeatable -peer flags (comma-separated values also
// accepted).
type peerList []string

func (p *peerList) String() string { return strings.Join(*p, ",") }

func (p *peerList) Set(v string) error {
	for _, a := range strings.Split(v, ",") {
		if a = strings.TrimSpace(a); a != "" {
			*p = append(*p, a)
		}
	}
	return nil
}

func main() {
	listen := flag.String("listen", "127.0.0.1:8070", "listen address")
	metrics := flag.String("metrics", "", "metrics endpoint address (empty = off)")
	statsEvery := flag.Duration("stats", 30*time.Second, "stats log interval (0 = off)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (empty = off)")
	shards := flag.Int("shards", registry.DefaultShards, "table lock partitions")
	timeout := flag.Duration("timeout", registry.DefaultTimeout, "per-command connection deadline")
	syncEvery := flag.Duration("sync-every", 5*time.Second, "peer anti-entropy interval")
	fleetEvery := flag.Duration("fleet-every", 0, "fleet aggregator scrape interval (0 = off)")
	fleetTopK := flag.Int("fleet-topk", 10, "worst paths kept in the fleet snapshot")
	var peers peerList
	flag.Var(&peers, "peer", "peer registryd address to sync against (repeatable, or comma-separated)")
	mkLog := daemon.LogFlags()
	flag.Parse()
	logger := mkLog("registryd")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	s := registry.Server{NumShards: *shards, Timeout: *timeout}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		logger.Error("listen failed", "addr", *listen, "err", err)
		os.Exit(1)
	}
	var listenerUp atomic.Bool
	listenerUp.Store(true)
	go func() {
		defer listenerUp.Store(false)
		if err := s.Serve(l); err != nil {
			logger.Error("serve failed", "err", err)
		}
	}()
	logger.Info("listening", "addr", l.Addr().String(), "shards", *shards, "peers", peers.String())

	var ps *registry.PeerSync
	if len(peers) > 0 {
		ps = registry.NewPeerSync(&s, peers, *syncEvery, *timeout, logger)
		go ps.Run(ctx)
	}

	// The fleet aggregator turns the registry's vantage into a fleet-wide
	// observability plane: every relay that heartbeats with a metrics
	// address gets its /metrics and /debug/paths scraped each interval,
	// and the merged snapshot is served on /debug/fleet and as fleet_*
	// Prometheus families.
	var agg *fleet.Aggregator
	if *fleetEvery > 0 {
		agg = fleet.New(fleet.Config{
			Source: fleet.ServerSource(&s),
			Every:  *fleetEvery,
			TopK:   *fleetTopK,
		})
		go agg.Run(ctx)
		logger.Info("fleet aggregator running", "every", *fleetEvery)
	}

	ready := httpx.NewReady()
	ready.AddLive("listener", func() error {
		if !listenerUp.Load() {
			return errors.New("listener closed")
		}
		return nil
	})

	d := &daemon.Daemon{
		Prefix: "registry",
		Vars: func() any {
			st := s.Stats()
			return map[string]any{
				"registrations": s.Registrations.Load(),
				"lists":         s.Lists.Load(),
				"delta_lists":   s.DeltaLists.Load(),
				"full_deltas":   s.FullDeltas.Load(),
				"syncs":         s.Syncs.Load(),
				"downs":         s.Downs.Load(),
				"live_relays":   st.Live,
				"down_relays":   st.Down,
				"epoch":         st.Epoch,
			}
		},
		Registry: func() any {
			out := map[string]any{"table": s.Stats()}
			if ps != nil {
				out["peers"] = ps.Stats()
			}
			return out
		},
		Prom: func(p *obs.Prom) {
			st := s.Stats()
			p.Counter("registry_registrations_total", "Accepted REGISTER commands.", float64(s.Registrations.Load()))
			p.Counter("registry_lists_total", "LIST and LISTH commands served.", float64(s.Lists.Load()))
			p.Counter("registry_delta_lists_total", "LISTD commands served.", float64(s.DeltaLists.Load()))
			p.Counter("registry_full_deltas_total", "Delta responses that fell back to a full snapshot.", float64(s.FullDeltas.Load()))
			p.Counter("registry_syncs_total", "SYNCD peer pulls served.", float64(s.Syncs.Load()))
			p.Counter("registry_downs_total", "Relays marked down after TTL lapse.", float64(s.Downs.Load()))
			p.Gauge("registry_live_relays", "Relays currently registered and unexpired.", float64(st.Live))
			p.Gauge("registry_down_relays", "Relays inside their post-expiry grace window.", float64(st.Down))
			p.Gauge("registry_epoch", "Current registry mutation epoch.", float64(st.Epoch))
			p.Gauge("registry_shards", "Table lock partitions.", float64(st.Shards))
			p.Histogram("registry_command_latency_seconds", "Wire-command handling times.", s.LatencySnapshot())
			if ps != nil {
				pulls := map[string]float64{}
				applied := map[string]float64{}
				errs := map[string]float64{}
				for _, pst := range ps.Stats() {
					pulls[pst.Addr] = float64(pst.Pulls)
					applied[pst.Addr] = float64(pst.Applied)
					errs[pst.Addr] = float64(pst.Errors)
				}
				p.LabeledCounter("registry_peer_pulls_total", "Peer sync pulls completed.", "peer", pulls)
				p.LabeledCounter("registry_peer_applied_total", "Peer sync records applied.", "peer", applied)
				p.LabeledCounter("registry_peer_errors_total", "Peer sync failures.", "peer", errs)
			}
			if agg != nil {
				agg.Snapshot().WriteProm(p)
			}
		},
		Ready: ready,
	}
	if agg != nil {
		d.Fleet = func() any { return agg.Snapshot() }
	}
	d.ServeMetrics(ctx, *metrics, logger)
	if *pprofAddr != "" {
		go func() {
			if err := httpx.ServePprof(ctx, *pprofAddr); err != nil {
				logger.Error("pprof server failed", "err", err)
			}
		}()
		logger.Info("pprof serving", "addr", *pprofAddr)
	}

	// The stats logger stops with the signal context (ranging over the
	// ticker would leak the goroutine past shutdown).
	if *statsEvery > 0 {
		ticker := time.NewTicker(*statsEvery)
		go func() {
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					logger.Info("stats", "live_relays", len(s.List()),
						"registrations", s.Registrations.Load(),
						"epoch", s.Epoch())
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	<-ctx.Done()
	logger.Info("shutting down", "registrations", s.Registrations.Load(), "epoch", s.Epoch())
	l.Close()
}
