// Command realbench runs a miniature measurement study over real TCP on
// loopback: it spins up an origin and several relays in-process, emulates
// heterogeneous, per-round-varying path bandwidths with the token-bucket
// shaper, and runs the paper's two-process methodology (a control client
// on the direct path beside a probing, selecting client) for a number of
// rounds, printing the same improvement statistics as the simulator
// experiments — a wall-clock cross-check of the whole stack.
//
// A metrics collector observes every round (engine and transport both
// feed it), so the closing report includes the paper's §V per-path
// utilization straight from the event stream; -metrics additionally
// serves the live snapshot on /debug/vars while the study runs.
//
// Usage:
//
//	realbench -rounds 20 -size 500000 [-metrics 127.0.0.1:9090]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/obs"
	"repro/internal/randx"
	"repro/internal/realnet"
	"repro/internal/relay"
	"repro/internal/shaper"
	"repro/internal/stats"
)

func main() {
	rounds := flag.Int("rounds", 20, "measurement rounds")
	size := flag.Int64("size", 500_000, "object size in bytes")
	probe := flag.Int64("probe", 100_000, "probe size x in bytes")
	seed := flag.Uint64("seed", 1, "rng seed for per-round path rates")
	metricsAddr := flag.String("metrics", "", "serve live metrics on this address (empty = off)")
	phases := flag.Bool("phases", false, "record tracing spans and print a per-phase latency breakdown")
	mkLog := daemon.LogFlags()
	flag.Parse()
	logger := mkLog("realbench")

	// With -phases, one collector receives spans from all three roles
	// (client, relay, origin run in-process here); Span.Service keeps
	// them apart in the breakdown.
	var spans *obs.SpanCollector
	if *phases {
		spans = obs.NewSpanCollector(0)
	}

	origin := relay.NewOrigin()
	origin.Spans = spans
	origin.Put("large.bin", *size)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		logger.Error("origin listen failed", "err", err)
		os.Exit(1)
	}
	defer ol.Close()

	relays := map[string]string{}
	for _, name := range []string{"r1", "r2", "r3"} {
		r := &relay.Relay{Spans: spans}
		l, err := r.ServeAddr("127.0.0.1:0")
		if err != nil {
			logger.Error("relay listen failed", "err", err)
			os.Exit(1)
		}
		defer l.Close()
		relays[name] = l.Addr().String()
	}

	m := obs.NewMetrics()
	// A health monitor rides the same event stream as the metrics
	// collector (event-time clock: transport timestamps), so the closing
	// report can show each path's damped state next to its utilization.
	health := obs.NewHealthMonitor(obs.HealthConfig{})
	observer := obs.Multi(m, health)
	d := shaper.NewDialer()
	tr := &realnet.Transport{
		Servers:  map[string]string{"origin": ol.Addr().String()},
		Relays:   relays,
		Dial:     d.Dial,
		Verify:   true,
		Observer: observer,
		Spans:    spans,
	}
	defer tr.Close()

	ctx, stopMetrics := context.WithCancel(context.Background())
	defer stopMetrics()
	dm := &daemon.Daemon{
		Prefix: "realbench",
		Vars:   func() any { return m.Snapshot() },
		Health: health,
	}
	dm.ServeMetrics(ctx, *metricsAddr, logger)

	// Per-round path rates: direct wanders log-normally around 6 Mb/s;
	// each relay has its own stable level.
	rng := randx.New(*seed)
	directDist := randx.LogNormalFromMean(6e6, 0.5)
	relayRate := map[string]float64{"r1": 10e6, "r2": 4e6, "r3": 7e6}

	obj := core.Object{Server: "origin", Name: "large.bin", Size: *size}
	cands := []string{"r1", "r2", "r3"}
	tracker := core.NewTracker()
	var improvements []float64
	indirect := 0

	fmt.Printf("real-TCP mini-study: %d rounds, %d-byte object, %d-byte probe\n",
		*rounds, *size, *probe)
	for i := 0; i < *rounds; i++ {
		direct := directDist.Sample(rng)
		d.SetProfile(ol.Addr().String(), shaper.PathProfile{DownloadBps: direct})
		for name, addr := range relays {
			d.SetProfile(addr, shaper.PathProfile{DownloadBps: relayRate[name]})
		}

		// Control process: the whole object on the direct path.
		ctrl := tr.Start(obj, core.Path{}, 0, obj.Size)
		// Selecting process: probe, commit, fetch remainder.
		out := core.SelectAndFetch(tr, obj, cands, core.Config{ProbeBytes: *probe, Observer: observer, Spans: spans})
		tr.Wait(ctrl)
		if out.Err != nil || ctrl.Result().Err != nil {
			logger.Error("round failed", "round", i, "sel_err", out.Err, "ctrl_err", ctrl.Result().Err)
			os.Exit(1)
		}
		tracker.Observe(cands, out.Selected)
		imp := core.Improvement(out.Throughput(), ctrl.Result().Throughput())
		improvements = append(improvements, imp)
		if out.SelectedIndirect() {
			indirect++
		}
		fmt.Printf("  round %2d: direct=%5.1f Mb/s selected=%-10s improvement=%+6.1f%%\n",
			i+1, direct/1e6, out.Selected, imp)
	}

	s := stats.Summarize(improvements)
	fmt.Printf("\nutilization %.0f%%  avg improvement %.1f%%  median %.1f%%\n",
		100*float64(indirect)/float64(*rounds), s.Mean, s.Median)
	for _, name := range cands {
		fmt.Printf("  %s: offered %d, chosen %d (%.0f%%)\n",
			name, tracker.InSet(name), tracker.Chosen(name), 100*tracker.Utilization(name))
	}

	// The same story retold by the observability layer (paper §V): one
	// event stream covering engine selections and transport retries.
	snap := m.Snapshot()
	fmt.Printf("\nobserved: %d selections (%d indirect), %d probes, %d retries, %d aborts\n",
		snap.Selections, snap.SelectionsIndirect, snap.ProbesStarted, snap.Retries, snap.Aborts)
	for _, label := range snap.PathLabels() {
		ps := snap.Paths[label]
		fmt.Printf("  %-8s probed %3d  selected %3d  utilization %.0f%%\n",
			label, ps.Probed, ps.Selected, 100*ps.Utilization)
	}

	// Connection economics: with the per-path idle pool, every warm
	// remainder and every repeat probe should ride an existing conn.
	pool := tr.PoolStats()
	fmt.Printf("pool: %d reuses, %d misses, %d parked, %d evicted, %d discarded, %d idle\n",
		pool.Reuses, pool.Misses, pool.Parked, pool.Evicted, pool.Discarded, pool.Idle)
	fmt.Printf("streamed %d bytes through the transport in %d-byte chunks or smaller\n",
		snap.BytesStreamed, 64<<10)

	// Damped path health from the same stream: the telemetry view an
	// operator would see on /debug/paths after this workload.
	hs := health.Snapshot()
	fmt.Printf("\npath health (window %.0fs):\n", health.Config().Window)
	for _, ph := range hs.Paths {
		fmt.Printf("  %-28s %-8s score %.2f  ewma %6.2f Mb/s  ok %d fail %d\n",
			ph.Path, ph.State, ph.Score, ph.ThroughputEWMA, ph.Ok, ph.Failed)
	}

	if spans != nil {
		printPhaseBreakdown(spans)
	}
}

// printPhaseBreakdown aggregates every recorded span by service/phase and
// prints where wall-clock time went across the whole study — the
// cross-process answer to "is selection latency dial, TTFB, or stream?".
func printPhaseBreakdown(spans *obs.SpanCollector) {
	all := spans.Spans()
	byPhase := map[string][]float64{}
	var keys []string
	for _, s := range all {
		k := s.Service + "/" + s.Phase
		if _, seen := byPhase[k]; !seen {
			keys = append(keys, k)
		}
		byPhase[k] = append(byPhase[k], float64(s.Duration)/1e6) // ms
	}
	sort.Strings(keys)
	fmt.Printf("\nper-phase span breakdown (%d spans, %d dropped):\n",
		spans.Seen(), spans.Dropped())
	for _, k := range keys {
		sum := stats.Summarize(byPhase[k])
		fmt.Printf("  %-22s n=%4d  median %9.3f ms  p90 %9.3f ms  max %9.3f ms\n",
			k, sum.N, sum.Median, sum.P90, sum.Max)
	}
}
