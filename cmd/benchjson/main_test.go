package main

import "testing"

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkWarmFetch64K-8   \t   21614\t     55110 ns/op\t1189.26 MB/s\t    4327 B/op\t      62 allocs/op")
	if !ok {
		t.Fatal("line not recognized")
	}
	if r.Name != "BenchmarkWarmFetch64K" {
		t.Fatalf("name = %q, want GOMAXPROCS suffix stripped", r.Name)
	}
	if r.Iterations != 21614 || r.NsPerOp != 55110 || r.MBPerS != 1189.26 ||
		r.BytesPerOp != 4327 || r.AllocsPerOp != 62 {
		t.Fatalf("decoded %+v", r)
	}
}

func TestParseLineNoSetBytes(t *testing.T) {
	r, ok := parseLine("BenchmarkHealthFold-4 \t 8379126\t       143.1 ns/op\t       0 B/op\t       0 allocs/op")
	if !ok {
		t.Fatal("line not recognized")
	}
	if r.MBPerS != 0 || r.NsPerOp != 143.1 || r.AllocsPerOp != 0 {
		t.Fatalf("decoded %+v", r)
	}
}

func TestParseLineRejectsNonBench(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"pkg: repro/internal/realnet",
		"PASS",
		"ok  \trepro/internal/realnet\t2.01s",
		"BenchmarkBroken-8 not-a-number ns/op",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("line %q wrongly parsed as a benchmark", line)
		}
	}
}
