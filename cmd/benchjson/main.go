// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document, so CI can archive benchmark results as
// a structured artifact instead of a text log. Non-benchmark lines (PASS,
// ok, package headers) pass through to stderr, keeping them visible in
// the CI log without polluting the JSON.
//
// Usage:
//
//	go test -bench WarmFetch -benchmem ./... | benchjson -out BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark line, decoded.
type Result struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// MBPerS is throughput for benchmarks that call SetBytes; 0 otherwise.
	MBPerS float64 `json:"mb_per_s,omitempty"`
	// BytesPerOp and AllocsPerOp appear with -benchmem.
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// Document is the archived artifact: environment stamp plus results.
type Document struct {
	Go         string   `json:"go"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	Time       string   `json:"time"`
	Benchmarks []Result `json:"benchmarks"`
	// Extras holds embedded experiment artifacts (-extra name=path):
	// whole JSON documents produced by other tools, carried inside the
	// benchmark artifact so one file describes the run.
	Extras map[string]json.RawMessage `json:"extras,omitempty"`
}

// parseLine decodes one `Benchmark...` output line, returning false for
// anything else (headers, PASS/ok trailers, failures).
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 3 || !strings.HasPrefix(f[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	r := Result{Name: name, Iterations: iters}
	// The remainder is value/unit pairs: 123 ns/op, 45.6 MB/s, ...
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "MB/s":
			r.MBPerS = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		}
	}
	return r, true
}

// extraFlags collects repeated -extra name=path pairs.
type extraFlags []string

func (e *extraFlags) String() string     { return strings.Join(*e, ",") }
func (e *extraFlags) Set(v string) error { *e = append(*e, v); return nil }

func main() {
	out := flag.String("out", "", "write JSON here (empty = stdout)")
	var extras extraFlags
	flag.Var(&extras, "extra", "embed a JSON file under extras.<name>; format name=path (repeatable)")
	flag.Parse()

	doc := Document{
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		Time:   time.Now().UTC().Format(time.RFC3339),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	failed := false
	for sc.Scan() {
		line := sc.Text()
		if r, ok := parseLine(line); ok {
			doc.Benchmarks = append(doc.Benchmarks, r)
			continue
		}
		if strings.HasPrefix(line, "FAIL") || strings.Contains(line, "--- FAIL") {
			failed = true
		}
		fmt.Fprintln(os.Stderr, line)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchjson: benchmark run failed; no JSON written")
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	for _, e := range extras {
		name, path, ok := strings.Cut(e, "=")
		if !ok || name == "" || path == "" {
			fmt.Fprintf(os.Stderr, "benchjson: bad -extra %q (want name=path)\n", e)
			os.Exit(1)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: extra %s: %v\n", name, err)
			os.Exit(1)
		}
		if !json.Valid(raw) {
			fmt.Fprintf(os.Stderr, "benchjson: extra %s: %s is not valid JSON\n", name, path)
			os.Exit(1)
		}
		if doc.Extras == nil {
			doc.Extras = make(map[string]json.RawMessage)
		}
		doc.Extras[name] = json.RawMessage(raw)
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: encode: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d benchmarks)\n", *out, len(doc.Benchmarks))
}
