// Command indirectlab reproduces the evaluation of "A Performance
// Analysis of Indirect Routing" (IPPS 2007) on the simulated PlanetLab
// topology: one subcommand per table and figure, plus the ablations.
//
// Usage:
//
//	indirectlab -exp all                 # everything, reduced scale
//	indirectlab -exp fig1 -scale paper   # Figure 1 at paper scale
//	indirectlab -exp table3 -seed 7
//
// Scales: "quick" (CI-sized), "default", and "paper" (the paper's
// transfer counts: 100 per client for Section 3, 720 per configuration
// for Section 4).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiment"
	"repro/internal/report"
	"repro/internal/topo"
	"repro/internal/traceio"
)

type scale struct {
	studyTransfers int
	pairTransfers  int
	fig6Transfers  int
	fig6Sizes      []int
	table3Rounds   int
	ablateRounds   int
	registryRelays int
	registryOps    int
	chaosTransfers int
	chaosSimXfers  int
	obsRounds      int
	obsRequests    int
}

var scales = map[string]scale{
	"quick": {
		studyTransfers: 20,
		pairTransfers:  8,
		fig6Transfers:  40,
		fig6Sizes:      []int{1, 3, 10, 22, 35},
		table3Rounds:   150,
		ablateRounds:   30,
		registryRelays: 10_000,
		registryOps:    4000,
		chaosTransfers: 8,
		chaosSimXfers:  10,
		obsRounds:      5,
		obsRequests:    80,
	},
	"default": {
		studyTransfers: 60,
		pairTransfers:  25,
		fig6Transfers:  150,
		fig6Sizes:      []int{1, 2, 3, 4, 5, 6, 8, 10, 12, 15, 20, 25, 30, 35},
		table3Rounds:   500,
		ablateRounds:   80,
		registryRelays: 100_000,
		registryOps:    16_000,
		chaosTransfers: 16,
		chaosSimXfers:  24,
		obsRounds:      7,
		obsRequests:    150,
	},
	"paper": {
		studyTransfers: 100,
		pairTransfers:  40,
		fig6Transfers:  720,
		fig6Sizes:      []int{1, 2, 3, 4, 5, 6, 8, 10, 12, 15, 20, 25, 30, 35},
		table3Rounds:   720,
		ablateRounds:   150,
		registryRelays: 100_000,
		registryOps:    32_000,
		chaosTransfers: 32,
		chaosSimXfers:  48,
		obsRounds:      11,
		obsRequests:    300,
	},
}

func main() {
	var (
		expFlag      = flag.String("exp", "all", "experiment id: fig1,fig2,table1,table2,fig3,fig4,fig5,fig6,table3,ablate,adaptive,monitor,healthrank,multipath,seeds,validate,cacheegress,registryload,chaos,obsoverhead,topo,all")
		seed         = flag.Uint64("seed", 42, "study seed (scenario + workloads)")
		scaleFlag    = flag.String("scale", "default", "workload scale: quick, default, paper")
		workers      = flag.Int("workers", 0, "parallel campaign workers (0 = GOMAXPROCS)")
		outTrace     = flag.String("out", "", "archive the Section 3 study records to this JSONL file")
		outCSV       = flag.String("csv", "", "export the Section 3 study records to this CSV file")
		plotDir      = flag.String("plotdata", "", "write gnuplot-ready TSV series for each produced figure/table into this directory")
		scenarioPath = flag.String("scenario", "", "JSON scenario config (see topo.ScenarioConfig); used by -exp topo")
		regloadJSON  = flag.String("regload-json", "", "write the registryload result as JSON to this file")
		chaosJSON    = flag.String("chaos-json", "", "write the chaos campaign result as JSON to this file")
		chaosBundles = flag.String("chaos-bundle-dir", "", "persist each live fault class's anomaly debug bundles under this directory (CI artifact)")
		obsJSON      = flag.String("obsoverhead-json", "", "write the observability-overhead result as JSON to this file")
	)
	flag.Parse()

	plot := func(name string, fn func(*os.File) error) {
		if *plotDir == "" {
			return
		}
		if err := os.MkdirAll(*plotDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "plotdata: %v\n", err)
			os.Exit(1)
		}
		archive(filepath.Join(*plotDir, name), fn)
	}

	sc, ok := scales[*scaleFlag]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scale %q (quick, default, paper)\n", *scaleFlag)
		os.Exit(2)
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	w := os.Stdout

	var study *experiment.StudyResult
	needStudy := all || want["fig1"] || want["fig2"] || want["table1"] || want["fig4"] ||
		*outTrace != "" || *outCSV != ""
	if needStudy {
		run("section 3 study", func() {
			study = experiment.RunStudy(experiment.StudyParams{
				Seed:               *seed,
				TransfersPerClient: sc.studyTransfers,
				Workers:            *workers,
			})
		})
	}
	if *outTrace != "" {
		archive(*outTrace, func(f *os.File) error {
			return traceio.Write(f, fmt.Sprintf("indirectlab seed=%d scale=%s", *seed, *scaleFlag), study.Records)
		})
	}
	if *outCSV != "" {
		archive(*outCSV, func(f *os.File) error {
			return traceio.WriteCSV(f, study.Records)
		})
	}
	var pairs *experiment.PairStudyResult
	needPairs := all || want["table2"] || want["fig3"] || want["fig5"]
	if needPairs {
		run("pair study", func() {
			pairs = experiment.RunPairStudy(experiment.PairStudyParams{
				Seed:             *seed,
				TransfersPerPair: sc.pairTransfers,
				Workers:          *workers,
			})
		})
	}

	if all || want["fig1"] {
		f1 := experiment.Fig1(study)
		report.Fig1(w, f1)
		fmt.Fprintln(w)
		plot("fig1.tsv", func(f *os.File) error { return report.Fig1Data(f, f1) })
	}
	if all || want["fig2"] {
		report.Fig2(w, experiment.Fig2(study, nil))
		fmt.Fprintln(w)
	}
	if all || want["table1"] {
		t1 := experiment.Table1(study)
		report.Table1(w, t1)
		fmt.Fprintln(w)
		plot("table1.tsv", func(f *os.File) error { return report.Table1Data(f, t1) })
	}
	if all || want["table2"] {
		t2 := experiment.Table2(pairs)
		report.Table2(w, t2)
		fmt.Fprintln(w)
		plot("table2.tsv", func(f *os.File) error { return report.Table2Data(f, t2) })
	}
	if all || want["fig3"] {
		f3 := experiment.Fig3(pairs)
		report.Fig3(w, f3)
		fmt.Fprintln(w)
		plot("fig3.tsv", func(f *os.File) error { return report.Fig3Data(f, f3) })
	}
	if all || want["fig4"] {
		f4 := experiment.Fig4(study, 0)
		report.Fig4(w, f4)
		fmt.Fprintln(w)
		plot("fig4.tsv", func(f *os.File) error { return report.Fig4Data(f, f4) })
	}
	if all || want["fig5"] {
		f5 := experiment.Fig5(pairs)
		report.Fig5(w, f5)
		fmt.Fprintln(w)
		plot("fig5.tsv", func(f *os.File) error { return report.Fig5Data(f, f5) })
	}
	if all || want["fig6"] {
		var f6 experiment.Fig6Result
		run("figure 6 sweep", func() {
			f6 = experiment.Fig6(experiment.Fig6Params{
				Seed:             *seed,
				SetSizes:         sc.fig6Sizes,
				TransfersPerSize: sc.fig6Transfers,
				Workers:          *workers,
			})
		})
		report.Fig6(w, f6)
		fmt.Fprintln(w)
		plot("fig6.tsv", func(f *os.File) error { return report.Fig6Data(f, f6) })
	}
	if all || want["table3"] {
		var t3 experiment.Table3Result
		run("table III campaign", func() {
			t3 = experiment.Table3(experiment.Table3Params{
				Seed:    *seed,
				Rounds:  sc.table3Rounds,
				Workers: *workers,
			})
		})
		report.Table3(w, t3)
		fmt.Fprintln(w)
		plot("table3.tsv", func(f *os.File) error { return report.Table3Data(f, t3) })
	}
	if all || want["ablate"] {
		p := experiment.AblationParams{Seed: *seed, Rounds: sc.ablateRounds, Workers: *workers}
		run("ablations", func() {
			report.Ablation(w, "probe size x (paper: 100 KB)", experiment.AblateProbeSize(p, nil))
			report.Ablation(w, "selection rule", experiment.AblateSelectionRule(p))
			report.Ablation(w, "uniform vs utilization-weighted random set (Section 6)",
				experiment.AblateWeightedPolicy(p, 0))
			report.Ablation(w, "shared-bottleneck fraction", experiment.AblateSharedBottleneck(p, nil))
			report.Ablation(w, "object size (paper: >= 2 MB)", experiment.AblateObjectSize(p, nil))
		})
	}
	if all || want["multipath"] {
		var results []experiment.MultipathResult
		run("multipath comparison", func() {
			results = experiment.RunMultipath(experiment.MultipathParams{
				Seed:    *seed,
				Rounds:  sc.ablateRounds,
				Workers: *workers,
			})
		})
		report.Multipath(w, results)
		fmt.Fprintln(w)
	}
	if all || want["monitor"] {
		var results []experiment.MonitoredResult
		run("monitoring comparison", func() {
			results = experiment.RunMonitored(experiment.MonitoredParams{
				Seed:    *seed,
				Rounds:  sc.ablateRounds,
				Workers: *workers,
			})
		})
		report.Monitored(w, results)
		fmt.Fprintln(w)
	}
	if all || want["healthrank"] {
		var hr experiment.HealthRankResult
		run("health-ranked candidate comparison", func() {
			hr = experiment.RunHealthRank(experiment.HealthRankParams{
				Seed:          *seed,
				EvalTransfers: sc.fig6Transfers,
				Workers:       *workers,
			})
		})
		report.HealthRank(w, hr)
		fmt.Fprintln(w)
	}
	if want["validate"] {
		var vr experiment.ValidateResult
		run("model validation", func() { vr = experiment.Validate() })
		report.Validate(w, vr)
		fmt.Fprintln(w)
	}
	if want["cacheegress"] {
		var ce experiment.CacheEgressResult
		run("relay cache origin egress", func() {
			ce = experiment.RunCacheEgress(experiment.CacheEgressParams{})
		})
		report.CacheEgress(w, ce)
		fmt.Fprintln(w)
	}
	if want["registryload"] {
		var rl experiment.RegistryLoadResult
		run("registry load (sharding + delta sync)", func() {
			rl = experiment.RunRegistryLoad(experiment.RegistryLoadParams{
				Relays:        sc.registryRelays,
				Registrations: sc.registryOps,
			})
		})
		report.RegistryLoad(w, rl)
		fmt.Fprintln(w)
		if *regloadJSON != "" {
			archive(*regloadJSON, func(f *os.File) error {
				enc := json.NewEncoder(f)
				enc.SetIndent("", "  ")
				return enc.Encode(rl)
			})
		}
	}
	if want["chaos"] {
		var ch experiment.ChaosResult
		run("chaos campaign (fault injection sweep)", func() {
			ch = experiment.RunChaos(experiment.ChaosParams{
				Seed:         *seed,
				Transfers:    sc.chaosTransfers,
				SimTransfers: sc.chaosSimXfers,
				BundleDir:    *chaosBundles,
			})
		})
		report.Chaos(w, ch)
		fmt.Fprintln(w)
		if *chaosJSON != "" {
			archive(*chaosJSON, func(f *os.File) error {
				enc := json.NewEncoder(f)
				enc.SetIndent("", "  ")
				return enc.Encode(ch)
			})
		}
	}
	if want["obsoverhead"] {
		var oo experiment.ObsOverheadResult
		run("observability overhead (bare vs full plane)", func() {
			oo = experiment.RunObsOverhead(experiment.ObsOverheadParams{
				Rounds:           sc.obsRounds,
				RequestsPerRound: sc.obsRequests,
			})
		})
		report.ObsOverhead(w, oo)
		fmt.Fprintln(w)
		if *obsJSON != "" {
			archive(*obsJSON, func(f *os.File) error {
				enc := json.NewEncoder(f)
				enc.SetIndent("", "  ")
				return enc.Encode(oo)
			})
		}
	}
	if want["seeds"] {
		var sw experiment.SeedSweepResult
		run("seed sweep", func() {
			sw = experiment.SeedSweep(experiment.SeedSweepParams{
				TransfersPerClient: sc.studyTransfers,
				Workers:            *workers,
			})
		})
		report.SeedSweep(w, sw)
		fmt.Fprintln(w)
	}
	if want["topo"] {
		var scen *topo.Scenario
		if *scenarioPath != "" {
			f, err := os.Open(*scenarioPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
				os.Exit(1)
			}
			cfg, err := topo.LoadConfig(f)
			f.Close()
			if err != nil {
				fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
				os.Exit(1)
			}
			if cfg.Seed == 0 {
				cfg.Seed = *seed
			}
			if scen, err = cfg.Build(); err != nil {
				fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
				os.Exit(1)
			}
		} else {
			scen = topo.NewScenario(topo.Params{Seed: *seed})
		}
		scen.Describe(w)
		fmt.Fprintln(w)
	}
	if all || want["adaptive"] {
		var results []experiment.AdaptiveResult
		run("adaptive comparison", func() {
			results = experiment.RunAdaptive(experiment.AdaptiveParams{
				Seed:    *seed,
				Rounds:  sc.ablateRounds,
				Workers: *workers,
			})
		})
		report.Adaptive(w, results)
		fmt.Fprintln(w)
	}
}

// run prints a progress line around a long step.
func run(name string, fn func()) {
	fmt.Fprintf(os.Stderr, "running %s...", name)
	start := time.Now()
	fn()
	fmt.Fprintf(os.Stderr, " done (%v)\n", time.Since(start).Round(time.Millisecond))
}

// archive writes a file via fn, exiting on failure.
func archive(path string, fn func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "archive: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := fn(f); err != nil {
		fmt.Fprintf(os.Stderr, "archive %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}
