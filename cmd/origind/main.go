// Command origind runs an origin server that serves synthetic objects
// with HTTP range support — the stand-in for the paper's destination web
// servers (eBay, Google, Microsoft, Yahoo).
//
// Usage:
//
//	origind -listen 127.0.0.1:8080 -object large.bin=4000000 -object small.bin=200000
//
// With -metrics set, live counters (bytes served, connections handled)
// are served as JSON on /debug/vars, Prometheus text format on /metrics
// (including the request-latency histogram and per-object serving-health
// gauges), per-object health as JSON on /debug/paths, liveness on
// /healthz, and readiness on /readyz (the listener must be up). With
// -trace set, the origin records a serve span per request — continuing
// whatever trace the client or relay stamped in the x-trace header — and
// archives them as JSONL on shutdown, ready for stitching with the other
// processes' archives. -pprof serves net/http/pprof on a separate
// address. Logging is structured (slog); see -log-format, -log-level,
// and -log-components.
//
// The flight-recorder pieces that apply to an origin are wired too:
// /debug/stack always serves a plain-text goroutine dump, -profile-dir
// runs the continuous profiler (periodic CPU/heap/goroutine captures in
// a byte-bounded on-disk ring, -profile-every / -profile-max-bytes),
// and an object whose serving health transitions to down fires a
// rate-limited debug bundle (goroutine dump, freshest profiles, the
// /metrics page) to /debug/bundle and -bundle-dir. Origins forward no
// transfers, so bundles here carry no wide events — those live on the
// relay and in the client.
package main

import (
	"context"
	"errors"
	"flag"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/daemon"
	"repro/internal/httpx"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/relay"
	"repro/internal/traceio"
)

type objectList []string

func (o *objectList) String() string     { return strings.Join(*o, ",") }
func (o *objectList) Set(v string) error { *o = append(*o, v); return nil }

func main() {
	var objects objectList
	listen := flag.String("listen", "127.0.0.1:8080", "listen address")
	metrics := flag.String("metrics", "", "metrics endpoint address (empty = off)")
	tracePath := flag.String("trace", "", "write span archive (JSONL) here on shutdown (empty = tracing off)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (empty = off)")
	profileDir := flag.String("profile-dir", "", "continuous-profiler capture directory (empty = profiler off)")
	profileEvery := flag.Duration("profile-every", 30*time.Second, "continuous-profiler capture cadence")
	profileMax := flag.Int64("profile-max-bytes", 8<<20, "continuous-profiler on-disk ring budget")
	bundleDir := flag.String("bundle-dir", "", "persist anomaly debug bundles here (empty = in-memory only)")
	bundleWindow := flag.Duration("bundle-window", time.Minute, "per-path rate limit between debug bundles")
	flag.Var(&objects, "object", "object spec name=size (repeatable)")
	mkLog := daemon.LogFlags()
	flag.Parse()
	logger := mkLog("origind")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var prof *flight.Profiler
	if *profileDir != "" {
		p, err := flight.NewProfiler(flight.ProfilerConfig{
			Dir: *profileDir, Every: *profileEvery, MaxBytes: *profileMax,
		})
		if err != nil {
			logger.Error("profiler failed", "dir", *profileDir, "err", err)
			os.Exit(1)
		}
		prof = p
		prof.Start()
		defer prof.Stop()
		logger.Info("profiler running", "dir", *profileDir, "every", *profileEvery)
	}

	var spans *obs.SpanCollector
	if *tracePath != "" {
		spans = obs.NewSpanCollector(0)
	}
	// An object's serving health going down fires a debug bundle; the
	// engine is assigned before the listener starts, so the nil-safe
	// closure can never race a live transition.
	var engine *flight.Engine
	origin := relay.NewOriginServer(
		relay.WithHealthMonitor(obs.NewHealthMonitor(obs.HealthConfig{
			Clock: obs.WallClock(),
			OnTransition: func(path string, tr obs.HealthTransition) { engine.FireHealth(path, tr) },
		})),
		relay.WithSpans(spans),
	)
	if len(objects) == 0 {
		objects = objectList{"large.bin=4000000"}
	}
	for _, spec := range objects {
		name, sizeStr, ok := strings.Cut(spec, "=")
		if !ok {
			logger.Error("bad -object spec (want name=size)", "spec", spec)
			os.Exit(2)
		}
		size, err := strconv.ParseInt(sizeStr, 10, 64)
		if err != nil || size < 0 {
			logger.Error("bad size in -object spec", "spec", spec)
			os.Exit(2)
		}
		origin.Put(name, size)
		logger.Info("serving object", "name", name, "bytes", size)
	}

	engine = flight.NewEngine(flight.TriggerConfig{
		Spans:    spans,
		Profiler: prof,
		Dir:      *bundleDir,
		Window:   bundleWindow.Seconds(),
		Metrics: func() []byte {
			p := obs.NewProm()
			p.Counter("origin_bytes_served_total", "Content bytes written to clients.", float64(origin.BytesServed.Load()))
			p.Counter("origin_conns_total", "Connections accepted.", float64(origin.Conns.Load()))
			p.Histogram("origin_request_latency_seconds", "Request serving times.", origin.LatencySnapshot())
			origin.Health.Snapshot().WriteProm(p, "origin")
			obs.WriteRuntimeProm(p)
			return p.Bytes()
		},
	})
	defer engine.Close()

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		logger.Error("listen failed", "addr", *listen, "err", err)
		os.Exit(1)
	}
	var listenerUp atomic.Bool
	listenerUp.Store(true)
	go func() {
		defer listenerUp.Store(false)
		if err := origin.Serve(l); err != nil {
			logger.Error("serve failed", "err", err)
		}
	}()
	logger.Info("listening", "addr", l.Addr().String())

	ready := httpx.NewReady()
	ready.AddLive("listener", func() error {
		if !listenerUp.Load() {
			return errors.New("listener closed")
		}
		return nil
	})

	d := &daemon.Daemon{
		Prefix: "origin",
		Vars: func() any {
			return map[string]any{
				"bytes_served":  origin.BytesServed.Load(),
				"conns":         origin.Conns.Load(),
				"spans_seen":    spans.Seen(),
				"spans_dropped": spans.Dropped(),
				"bundles":       engine.Stats(),
				"profiler": map[string]any{
					"cycles": prof.Cycles(), "failures": prof.Failures(), "disk_bytes": prof.DiskBytes(),
				},
			}
		},
		Prom: func(p *obs.Prom) {
			p.Counter("origin_bytes_served_total", "Content bytes written to clients.", float64(origin.BytesServed.Load()))
			p.Counter("origin_conns_total", "Connections accepted.", float64(origin.Conns.Load()))
			p.Counter("origin_spans_total", "Tracing spans recorded.", float64(spans.Seen()))
			p.Histogram("origin_request_latency_seconds", "Request serving times.", origin.LatencySnapshot())
		},
		Health:  origin.Health,
		Bundles: engine,
		Ready:   ready,
	}
	d.ServeMetrics(ctx, *metrics, logger)
	if *pprofAddr != "" {
		go func() {
			if err := httpx.ServePprof(ctx, *pprofAddr); err != nil {
				logger.Error("pprof server failed", "err", err)
			}
		}()
		logger.Info("pprof serving", "addr", *pprofAddr)
	}

	<-ctx.Done()
	logger.Info("shutting down", "bytes_served", origin.BytesServed.Load())
	l.Close()
	if *tracePath != "" {
		if err := writeSpans(*tracePath, spans); err != nil {
			logger.Error("span archive failed", "path", *tracePath, "err", err)
		} else {
			logger.Info("spans archived", "path", *tracePath, "count", len(spans.Spans()))
		}
	}
}

func writeSpans(path string, spans *obs.SpanCollector) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := traceio.WriteSpans(f, "origind", spans.Spans()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
