// Command origind runs an origin server that serves synthetic objects
// with HTTP range support — the stand-in for the paper's destination web
// servers (eBay, Google, Microsoft, Yahoo).
//
// Usage:
//
//	origind -listen 127.0.0.1:8080 -object large.bin=4000000 -object small.bin=200000
//
// With -metrics set, live counters (bytes served, connections handled)
// are served as JSON on /debug/vars, Prometheus text format on /metrics
// (including the request-latency histogram), and /healthz for liveness.
// With -trace set, the origin records a serve span per request —
// continuing whatever trace the client or relay stamped in the x-trace
// header — and archives them as JSONL on shutdown, ready for stitching
// with the other processes' archives. -pprof serves net/http/pprof on a
// separate address.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/httpx"
	"repro/internal/obs"
	"repro/internal/relay"
	"repro/internal/traceio"
)

type objectList []string

func (o *objectList) String() string     { return strings.Join(*o, ",") }
func (o *objectList) Set(v string) error { *o = append(*o, v); return nil }

func main() {
	var objects objectList
	listen := flag.String("listen", "127.0.0.1:8080", "listen address")
	metrics := flag.String("metrics", "", "metrics endpoint address (empty = off)")
	tracePath := flag.String("trace", "", "write span archive (JSONL) here on shutdown (empty = tracing off)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (empty = off)")
	flag.Var(&objects, "object", "object spec name=size (repeatable)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	origin := relay.NewOrigin()
	var spans *obs.SpanCollector
	if *tracePath != "" {
		spans = obs.NewSpanCollector(0)
		origin.Spans = spans
	}
	if len(objects) == 0 {
		objects = objectList{"large.bin=4000000"}
	}
	for _, spec := range objects {
		name, sizeStr, ok := strings.Cut(spec, "=")
		if !ok {
			log.Fatalf("bad -object %q (want name=size)", spec)
		}
		size, err := strconv.ParseInt(sizeStr, 10, 64)
		if err != nil || size < 0 {
			log.Fatalf("bad size in -object %q", spec)
		}
		origin.Put(name, size)
		fmt.Printf("serving /%s (%d bytes)\n", name, size)
	}

	l, err := origin.ServeAddr(*listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("origind listening on %s\n", l.Addr())

	if *metrics != "" {
		mux := httpx.NewVarsMux(func() any {
			return map[string]any{
				"bytes_served":  origin.BytesServed.Load(),
				"conns":         origin.Conns.Load(),
				"spans_seen":    spans.Seen(),
				"spans_dropped": spans.Dropped(),
			}
		})
		mux.Handle("/metrics", httpx.PromHandler(func() []byte {
			p := obs.NewProm()
			p.Counter("origin_bytes_served_total", "Content bytes written to clients.", float64(origin.BytesServed.Load()))
			p.Counter("origin_conns_total", "Connections accepted.", float64(origin.Conns.Load()))
			p.Counter("origin_spans_total", "Tracing spans recorded.", float64(spans.Seen()))
			p.Histogram("origin_request_latency_seconds", "Request serving times.", origin.LatencySnapshot())
			return p.Bytes()
		}))
		go func() {
			if err := httpx.Serve(ctx, mux, *metrics); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
		fmt.Printf("metrics on http://%s/debug/vars and /metrics\n", *metrics)
	}
	if *pprofAddr != "" {
		go func() {
			if err := httpx.ServePprof(ctx, *pprofAddr); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
		fmt.Printf("pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}

	<-ctx.Done()
	fmt.Println("origind: shutting down")
	l.Close()
	if *tracePath != "" {
		if err := writeSpans(*tracePath, spans); err != nil {
			log.Printf("span archive: %v", err)
		} else {
			fmt.Printf("origind: %d spans archived to %s\n", len(spans.Spans()), *tracePath)
		}
	}
}

func writeSpans(path string, spans *obs.SpanCollector) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := traceio.WriteSpans(f, "origind", spans.Spans()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
