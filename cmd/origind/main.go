// Command origind runs an origin server that serves synthetic objects
// with HTTP range support — the stand-in for the paper's destination web
// servers (eBay, Google, Microsoft, Yahoo).
//
// Usage:
//
//	origind -listen 127.0.0.1:8080 -object large.bin=4000000 -object small.bin=200000
//
// With -metrics set, live counters (bytes served, connections handled)
// are served as JSON on /debug/vars, with /healthz for liveness.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/httpx"
	"repro/internal/relay"
)

type objectList []string

func (o *objectList) String() string     { return strings.Join(*o, ",") }
func (o *objectList) Set(v string) error { *o = append(*o, v); return nil }

func main() {
	var objects objectList
	listen := flag.String("listen", "127.0.0.1:8080", "listen address")
	metrics := flag.String("metrics", "", "metrics endpoint address (empty = off)")
	flag.Var(&objects, "object", "object spec name=size (repeatable)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	origin := relay.NewOrigin()
	if len(objects) == 0 {
		objects = objectList{"large.bin=4000000"}
	}
	for _, spec := range objects {
		name, sizeStr, ok := strings.Cut(spec, "=")
		if !ok {
			log.Fatalf("bad -object %q (want name=size)", spec)
		}
		size, err := strconv.ParseInt(sizeStr, 10, 64)
		if err != nil || size < 0 {
			log.Fatalf("bad size in -object %q", spec)
		}
		origin.Put(name, size)
		fmt.Printf("serving /%s (%d bytes)\n", name, size)
	}

	l, err := origin.ServeAddr(*listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("origind listening on %s\n", l.Addr())

	if *metrics != "" {
		mux := httpx.NewVarsMux(func() any {
			return map[string]any{
				"bytes_served": origin.BytesServed.Load(),
				"conns":        origin.Conns.Load(),
			}
		})
		go func() {
			if err := httpx.Serve(ctx, mux, *metrics); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
		fmt.Printf("metrics on http://%s/debug/vars\n", *metrics)
	}

	<-ctx.Done()
	fmt.Println("origind: shutting down")
	l.Close()
}
